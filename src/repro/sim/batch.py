"""NumPy lockstep batch functional engine (``run_batch``).

Runs ONE program over N independent inputs as array operations: the
register file is a ``(32, N)`` array (one column per lane), memory is a
set of dense per-region ``(words, N)`` arrays with a sparse per-lane
overlay, and the PC is per-lane.  Batch-shaped workloads — fault
campaigns over N sites of one binary, DSE successive-halving rungs,
N-seed differential sweeps — execute every lane's instruction in a
single vectorized step instead of N full Python dispatch loops.

Scheduling is two-mode:

* **converged** — every live lane sits at the same PC (the common case:
  campaign lanes share one input, sweep lanes share long convergent
  stretches).  One scalar-decoded instruction is applied to all lanes
  as a handful of NumPy ufunc calls; the per-instruction Python cost is
  paid once for the whole batch.
* **grouped (min-PC)** — after a data-divergent branch, each round
  steps exactly the lanes at the *minimum* live PC (the classic
  MIMD-on-SIMD reconvergence rule: lanes ahead wait, lanes behind catch
  up, and structured join points re-merge the batch).  The same
  vector kernels run on the lane subset; when all live PCs agree again
  the engine pops back to converged mode.

Equivalence contract (property-tested in
``tests/test_batch_engine.py``): for every lane ``i``,
``run_batch(program, mems)[i]`` is *exactly* the state a serial
:class:`~repro.sim.functional.FunctionalSimulator` run over ``mems[i]``
would leave — registers, touched-memory snapshot, final PC, retire
count, ``ctl_writes``, halt flag, and, for trap/budget lanes, the same
exception type and message.  Lanes retire independently: a lane that
halts early or traps (misaligned access, PC off the text segment,
instruction budget) freezes its architectural state while the rest of
the batch keeps running.

The engine is *functional-only* by design: it has no pipeline, so it
feeds golden-output verification, fault-campaign classification (via
:mod:`repro.faults`) and anything else that needs architectural results
at batch rates, while cycle numbers still come from the pipeline
engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.asm.program import Program, STACK_TOP
from repro.isa.alu import MASK32
from repro.isa.opcodes import Kind
from repro.memory.main_memory import MainMemory
from repro.sim.functional import SimulationError, _LOAD_SIZE, _STORE_SIZE

_I64 = np.int64

# kind codes (dispatch order in _exec follows hot-path frequency)
_K_ALU = 1        # ALU_RRR / SHIFT_I / ALU_RRI, operand-b pre-resolved
_K_LUI = 2
_K_LOAD = 3
_K_STORE = 4
_K_BCMP = 5
_K_BZ = 6
_K_JUMP = 7
_K_JAL = 8
_K_JR = 9
_K_JALR = 10
_K_HALT = 11
_K_CTL = 12

_ALU_CODE = {"add": 1, "addu": 1, "sub": 2, "subu": 2, "and": 3,
             "or": 4, "xor": 5, "nor": 6, "slt": 7, "sltu": 8,
             "sll": 9, "srl": 10, "sra": 11, "mul": 12, "div": 13,
             "rem": 14}

_COND_CODE = {"==0": 1, "!=0": 2, "<0": 3, "<=0": 4, ">0": 5, ">=0": 6}

#: padding (in words) added above each dense memory region so stores
#: just past the initialised data (BSS-style growth) stay vectorized
_REGION_PAD = 16384
#: gap (in words) between initialised addresses that starts a new region
_REGION_GAP = 32768
#: words of stack window kept dense below STACK_TOP
_STACK_WORDS = 16384


@dataclass
class LaneResult:
    """Final architectural state of one batch lane — field-for-field
    what a serial ``FunctionalSimulator`` run over the same input
    leaves behind (including the error, for trap/budget lanes)."""

    regs: List[int]
    memory: Dict[int, int]
    pc: int
    halted: bool
    instructions_retired: int
    ctl_writes: List[int]
    #: (exception class name, message) when the lane trapped, else None
    error: Optional[Tuple[str, str]] = None


@dataclass
class BatchResult:
    """Per-lane results plus batch aggregates."""

    lanes: List[LaneResult]
    total_retired: int = 0

    def __post_init__(self) -> None:
        self.total_retired = sum(r.instructions_retired for r in self.lanes)

    def __len__(self) -> int:
        return len(self.lanes)

    def __getitem__(self, i: int) -> LaneResult:
        return self.lanes[i]


def _decode_batch(program: Program):
    """Per-instruction dispatch records (scalar fields, decoded once)."""
    recs = []
    for i, instr in enumerate(program.instrs):
        pc = program.pc_of(i)
        pc4 = (pc + 4) & MASK32
        k = instr.spec.kind
        if k is Kind.ALU_RRR:
            recs.append((_K_ALU, instr.rd, instr.rs, instr.rt, None,
                         _ALU_CODE[instr.spec.alu_op], pc4))
        elif k is Kind.SHIFT_I:
            recs.append((_K_ALU, instr.rd, instr.rs, None, instr.shamt,
                         _ALU_CODE[instr.spec.alu_op], pc4))
        elif k is Kind.ALU_RRI:
            recs.append((_K_ALU, instr.rt, instr.rs, None, instr.imm,
                         _ALU_CODE[instr.spec.alu_op], pc4))
        elif k is Kind.LUI:
            recs.append((_K_LUI, instr.rt, (instr.imm << 16) & MASK32,
                         None, None, 0, pc4))
        elif k is Kind.LOAD:
            recs.append((_K_LOAD, instr.rt, instr.rs, instr.op,
                         instr.imm, _LOAD_SIZE[instr.op], pc4))
        elif k is Kind.STORE:
            recs.append((_K_STORE, instr.rt, instr.rs, instr.op,
                         instr.imm, _STORE_SIZE[instr.op], pc4))
        elif k is Kind.BRANCH_CMP:
            recs.append((_K_BCMP, None, instr.rs, instr.rt,
                         instr.op == "beq", instr.branch_target(pc), pc4))
        elif k is Kind.BRANCH_Z:
            recs.append((_K_BZ, None, instr.rs, None,
                         _COND_CODE[instr.spec.condition.value],
                         instr.branch_target(pc), pc4))
        elif k is Kind.JUMP:
            recs.append((_K_JUMP, None, None, None, None,
                         instr.jump_target(pc), pc4))
        elif k is Kind.JAL:
            recs.append((_K_JAL, None, None, None, None,
                         instr.jump_target(pc), pc4))
        elif k is Kind.JR:
            recs.append((_K_JR, None, instr.rs, None, None, 0, pc4))
        elif k is Kind.JALR:
            recs.append((_K_JALR, instr.rd, instr.rs, None, None, 0, pc4))
        elif k is Kind.HALT:
            recs.append((_K_HALT, None, None, None, None, 0, pc4))
        elif k is Kind.CTL:
            recs.append((_K_CTL, None, None, None, instr.imm, 0, pc4))
        else:   # pragma: no cover — Kind table is closed
            raise SimulationError("unhandled kind %s" % k)
    return recs


class _BatchMemory:
    """Per-lane memory: dense ``(words, N)`` regions + sparse overlay.

    Regions are clustered from the union of every lane's initialised
    words (plus a stack window), padded upward so near-data stores stay
    on the vector path.  A per-region boolean *written* mask records
    which (word, lane) cells a store touched, because the serial
    engine's snapshot is "touched words only" and reads must NOT touch
    — a lane's final snapshot is its initial dict overlaid with its
    written cells and its overlay entries.
    """

    def __init__(self, inits: List[Dict[int, int]], nlanes: int) -> None:
        self.nlanes = nlanes
        widxs = set()
        seen = set()
        for d in inits:
            if id(d) in seen:   # campaign lanes share one init dict
                continue
            seen.add(id(d))
            for addr in d:
                widxs.add(addr >> 2)
        for w in range((STACK_TOP >> 2) - _STACK_WORDS,
                       (STACK_TOP >> 2) + 64, _REGION_GAP // 2):
            widxs.add(w)
        bounds = []
        lo = hi = None
        for w in sorted(widxs):
            if lo is None:
                lo = hi = w
            elif w - hi > _REGION_GAP:
                bounds.append((lo, hi + _REGION_PAD))
                lo = hi = w
            else:
                hi = w
        if lo is not None:
            bounds.append((lo, hi + _REGION_PAD))
        self.starts = [b[0] for b in bounds]
        self.ends = [b[1] for b in bounds]
        self.arrays = [np.zeros((e - s, nlanes), dtype=_I64)
                       for s, e in bounds]
        self.written = [np.zeros((e - s, nlanes), dtype=bool)
                        for s, e in bounds]
        self.overlay: List[Dict[int, int]] = [dict() for _ in range(nlanes)]
        # group lanes sharing one init dict and fill each region with a
        # single cache-friendly row-broadcast instead of per-lane
        # strided column copies
        groups: Dict[int, Tuple[Dict[int, int], List[int]]] = {}
        for lane, d in enumerate(inits):
            g = groups.get(id(d))
            if g is None:
                groups[id(d)] = (d, [lane])
            else:
                g[1].append(lane)
        for d, lanes in groups.values():
            if not d:
                continue
            aw = np.fromiter(d.keys(), dtype=_I64, count=len(d)) >> 2
            av = np.fromiter(d.values(), dtype=_I64, count=len(d))
            for r, s in enumerate(self.starts):
                m = (aw >= s) & (aw < self.ends[r])
                if not m.any():
                    continue
                vec = np.zeros(self.ends[r] - s, dtype=_I64)
                vec[aw[m] - s] = av[m]
                if len(lanes) == nlanes:
                    self.arrays[r][:] = vec[:, None]
                else:
                    self.arrays[r][:, lanes] = vec[:, None]

    def _region_of(self, widx: np.ndarray) -> int:
        """Region index if every lane's word hits the same region,
        else -1 (mixed/overlay accesses take the slow scalar path)."""
        w0 = int(widx[0])
        for r, s in enumerate(self.starts):
            if s <= w0 < self.ends[r]:
                if widx.size == 1 or (int(widx.min()) >= s
                                      and int(widx.max()) < self.ends[r]):
                    return r
                return -1
        return -1

    # -- vector access (addr: per-lane byte addresses, word-aligned
    #    base already computed by the caller; cols: lane columns) -----
    def read_words(self, widx, cols):
        r = self._region_of(widx)
        if r >= 0:
            return self.arrays[r][widx - self.starts[r], cols]
        return self._gather_slow(widx, cols)

    def write_cells(self, widx, cols, vals):
        r = self._region_of(widx)
        if r >= 0:
            rel = widx - self.starts[r]
            self.arrays[r][rel, cols] = vals
            self.written[r][rel, cols] = True
        else:
            self._scatter_slow(widx, cols, vals)

    def _gather_slow(self, widx, cols):
        out = np.zeros(len(widx), dtype=_I64)
        for j in range(len(widx)):
            w = int(widx[j])
            lane = int(cols[j])
            for r, s in enumerate(self.starts):
                if s <= w < self.ends[r]:
                    out[j] = self.arrays[r][w - s, lane]
                    break
            else:
                out[j] = self.overlay[lane].get(w, 0)
        return out

    def _scatter_slow(self, widx, cols, vals):
        for j in range(len(widx)):
            w = int(widx[j])
            lane = int(cols[j])
            v = int(vals[j])
            for r, s in enumerate(self.starts):
                if s <= w < self.ends[r]:
                    self.arrays[r][w - s, lane] = v
                    self.written[r][w - s, lane] = True
                    break
            else:
                self.overlay[lane][w] = v

    def snapshot(self, lane: int, init: Dict[int, int]) -> Dict[int, int]:
        snap = dict(init)
        for r, s in enumerate(self.starts):
            rows = np.nonzero(self.written[r][:, lane])[0]
            if rows.size:
                vals = self.arrays[r][rows, lane]
                snap.update(zip(((rows + s) << 2).tolist(), vals.tolist()))
        for w, v in self.overlay[lane].items():
            snap[w << 2] = v
        return snap


#: event codes for non-sequential op results.  A compiled op returns
#: either a plain Python ``int`` next-PC (sequential or uniformly-taken
#: control flow — the hot path allocates no tuple at all) or an
#: ``(event, payload)`` pair for the four non-sequential outcomes.
_SPLIT, _HALT, _FETCH, _MEMTRAP = 1, 2, 3, 4


def _compile_ops(recs, base, regs, bmem, ctl_writes):
    """Compile decoded records into per-PC closures ``op(cols, ids)``.

    Compilation hoists to closure-build time everything the record
    interpreter re-decided on every step: operand register *rows* are
    captured as array views, immediates are pre-masked/pre-sign-biased,
    the kind and ALU dispatch chains disappear, and loads/stores
    memoize the dense region they last hit.  ``cols`` is the register
    column selector (``slice(None)`` when every lane is live, else a
    lane index array); ``ids`` is the materialized lane-id array, which
    memory ops always need for pairwise fancy indexing.

    Register values are invariantly in ``[0, 2**32)`` — every writer
    masks — so ``& MASK32`` appears only where a value is created, not
    where one is read.
    """
    starts = bmem.starts
    ends = bmem.ends
    sizes = [e - s for s, e in zip(starts, ends)]
    arrays = bmem.arrays
    written = bmem.written
    _min = np.minimum.reduce
    _max = np.maximum.reduce
    _or = np.bitwise_or.reduce

    def locate(widx):
        """Full region search: index if all lanes hit one region
        (misaligned/mixed accesses fall back to the slow path)."""
        w0 = int(widx[0])
        for r, s in enumerate(starts):
            if s <= w0 < ends[r]:
                if widx.size == 1 or (int(_min(widx)) >= s
                                      and int(_max(widx)) < ends[r]):
                    return r
                return -1
        return -1

    def generic_mem(rec, k, ids, addr):
        """Region-searching access used off the fast path (overlay
        hits, lane-mixed regions, post-misalignment survivors)."""
        size = rec[5]
        widx = addr >> 2
        if k == _K_STORE:
            val = regs[rec[1], ids]
            if size == 4:
                bmem.write_cells(widx, ids, val)
            else:
                mask = 0xFF if size == 1 else 0xFFFF
                shift = (addr & 3) << 3
                w = bmem.read_words(widx, ids)
                w = (w & ~(mask << shift)) | ((val & mask) << shift)
                bmem.write_cells(widx, ids, w)
        else:
            w = bmem.read_words(widx, ids)
            if size != 4:
                mask = 0xFF if size == 1 else 0xFFFF
                w = (w >> ((addr & 3) << 3)) & mask
            op = rec[3]
            if op == "lb":
                w = np.where(w & 0x80, (w - 0x100) & MASK32, w)
            elif op == "lh":
                w = np.where(w & 0x8000, (w - 0x10000) & MASK32, w)
            rt = rec[1]
            if rt:      # a load to r0 still performs the access
                regs[rt, ids] = w

    def slow_mem(rec, k, ids, addr, pc4):
        """Alignment-splitting access: traps the misaligned lanes with
        the serial engine's exact message, completes the rest."""
        size = rec[5]
        if size == 4:
            bad = (addr & 3) != 0
        elif size == 2:
            bad = (addr & 1) != 0
        else:
            bad = None
        if bad is not None and bad.any():
            okm = ~bad
            okc = ids[okm]
            if k == _K_LOAD:
                word = ("lw at 0x%x" if size == 4
                        else "halfword read at 0x%x")
            else:
                word = ("sw at 0x%x" if size == 4
                        else "halfword write at 0x%x")
            badc = ids[bad]
            errs = {int(c): ("MisalignedAccess", word % int(a))
                    for c, a in zip(badc, addr[bad])}
            if okc.size:
                generic_mem(rec, k, okc, addr[okm])
            return (_MEMTRAP, (okc, badc, errs, pc4))
        generic_mem(rec, k, ids, addr)
        return pc4

    # ---- per-kind closure factories --------------------------------
    def mk_alu(rd, rs, rt, immb, ak, pc4):
        ra = regs[rs]
        if rd == 0:     # ALU never traps; a discarded result is a nop
            def op(cols, ids):
                return pc4
            return op
        rdrow = regs[rd]
        if rt is not None:
            rb = regs[rt]
            if ak == 1:
                def op(cols, ids):
                    rdrow[cols] = (ra[cols] + rb[cols]) & MASK32
                    return pc4
            elif ak == 2:
                def op(cols, ids):
                    rdrow[cols] = (ra[cols] - rb[cols]) & MASK32
                    return pc4
            elif ak == 3:
                def op(cols, ids):
                    rdrow[cols] = ra[cols] & rb[cols]
                    return pc4
            elif ak == 4:
                def op(cols, ids):
                    rdrow[cols] = ra[cols] | rb[cols]
                    return pc4
            elif ak == 5:
                def op(cols, ids):
                    rdrow[cols] = ra[cols] ^ rb[cols]
                    return pc4
            elif ak == 6:
                def op(cols, ids):
                    rdrow[cols] = (~(ra[cols] | rb[cols])) & MASK32
                    return pc4
            elif ak == 7:       # slt via sign-bias
                def op(cols, ids):
                    rdrow[cols] = ((ra[cols] ^ 0x80000000)
                                   < (rb[cols] ^ 0x80000000)).astype(_I64)
                    return pc4
            elif ak == 8:
                def op(cols, ids):
                    rdrow[cols] = (ra[cols] < rb[cols]).astype(_I64)
                    return pc4
            elif ak == 9:
                def op(cols, ids):
                    rdrow[cols] = (ra[cols] << (rb[cols] & 31)) & MASK32
                    return pc4
            elif ak == 10:
                def op(cols, ids):
                    rdrow[cols] = ra[cols] >> (rb[cols] & 31)
                    return pc4
            elif ak == 11:
                def op(cols, ids):
                    a = ra[cols]
                    s = a - ((a & 0x80000000) << 1)
                    rdrow[cols] = (s >> (rb[cols] & 31)) & MASK32
                    return pc4
            elif ak == 12:      # mul (signed, truncated)
                def op(cols, ids):
                    a = ra[cols]
                    b = rb[cols]
                    sa = a - ((a & 0x80000000) << 1)
                    sb = b - ((b & 0x80000000) << 1)
                    rdrow[cols] = (sa * sb) & MASK32
                    return pc4
            else:               # div/rem: C truncation, x/0 == 0
                def op(cols, ids, ak=ak):
                    a = ra[cols]
                    b = rb[cols]
                    sa = a - ((a & 0x80000000) << 1)
                    sb = b - ((b & 0x80000000) << 1)
                    zero = sb == 0
                    safe = np.where(zero, 1, sb)
                    q = np.abs(sa) // np.abs(safe)
                    if ak == 13:
                        v = np.where((sa < 0) != (safe < 0), -q, q)
                    else:
                        r_ = np.abs(sa) % np.abs(safe)
                        v = np.where(sa < 0, -r_, r_)
                    rdrow[cols] = np.where(zero, 0, v) & MASK32
                    return pc4
            return op
        # immediate second operand (pre-masked/biased at compile time)
        if ak == 1:
            def op(cols, ids):
                rdrow[cols] = (ra[cols] + immb) & MASK32
                return pc4
        elif ak == 2:
            def op(cols, ids):
                rdrow[cols] = (ra[cols] - immb) & MASK32
                return pc4
        elif ak == 3:       # logical immediates are zero-extended
            def op(cols, ids):
                rdrow[cols] = ra[cols] & immb
                return pc4
        elif ak == 4:
            def op(cols, ids):
                rdrow[cols] = ra[cols] | immb
                return pc4
        elif ak == 5:
            def op(cols, ids):
                rdrow[cols] = ra[cols] ^ immb
                return pc4
        elif ak == 6:
            def op(cols, ids):
                rdrow[cols] = (~(ra[cols] | immb)) & MASK32
                return pc4
        elif ak == 7:
            bi = (immb & MASK32) ^ 0x80000000
            def op(cols, ids):
                rdrow[cols] = ((ra[cols] ^ 0x80000000) < bi).astype(_I64)
                return pc4
        elif ak == 8:
            bu = immb & MASK32
            def op(cols, ids):
                rdrow[cols] = (ra[cols] < bu).astype(_I64)
                return pc4
        elif ak == 9:
            sh = immb & 31
            def op(cols, ids):
                rdrow[cols] = (ra[cols] << sh) & MASK32
                return pc4
        elif ak == 10:
            sh = immb & 31
            def op(cols, ids):
                rdrow[cols] = ra[cols] >> sh
                return pc4
        elif ak == 11:
            sh = immb & 31
            def op(cols, ids):
                a = ra[cols]
                s = a - ((a & 0x80000000) << 1)
                rdrow[cols] = (s >> sh) & MASK32
                return pc4
        elif ak == 12:
            def op(cols, ids):
                a = ra[cols]
                sa = a - ((a & 0x80000000) << 1)
                rdrow[cols] = (sa * immb) & MASK32
                return pc4
        elif immb == 0:     # div/rem by constant zero: result 0
            def op(cols, ids):
                rdrow[cols] = 0
                return pc4
        else:
            babs = abs(immb)
            bneg = immb < 0
            if ak == 13:
                def op(cols, ids):
                    a = ra[cols]
                    sa = a - ((a & 0x80000000) << 1)
                    q = np.abs(sa) // babs
                    rdrow[cols] = np.where((sa < 0) != bneg, -q, q) & MASK32
                    return pc4
            else:
                def op(cols, ids):
                    a = ra[cols]
                    sa = a - ((a & 0x80000000) << 1)
                    r_ = np.abs(sa) % babs
                    rdrow[cols] = np.where(sa < 0, -r_, r_) & MASK32
                    return pc4
        return op

    def mk_lui(rt, val, pc4):
        if rt == 0:
            def op(cols, ids):
                return pc4
        else:
            row = regs[rt]
            def op(cols, ids):
                row[cols] = val
                return pc4
        return op

    def mk_mem(rec):
        k, rt, rs, opname, imm, size, pc4 = rec
        ra = regs[rs]
        cell = [0]      # memoized dense-region index for this site
        amask = 3 if size == 4 else (1 if size == 2 else 0)
        if k == _K_LOAD:
            rtrow = regs[rt] if rt else None
            sub = size != 4
            mask = 0xFF if size == 1 else 0xFFFF
            sign = 0x80 if opname == "lb" else (
                0x8000 if opname == "lh" else 0)
            wrap = sign << 1
            def op(cols, ids):
                addr = (ra[cols] + imm) & MASK32
                if amask and int(_or(addr)) & amask:
                    return slow_mem(rec, _K_LOAD, ids, addr, pc4)
                widx = addr >> 2
                r = cell[0]
                rel = widx - starts[r]
                if int(_min(rel)) < 0 or int(_max(rel)) >= sizes[r]:
                    r = locate(widx)
                    if r < 0:
                        return slow_mem(rec, _K_LOAD, ids, addr, pc4)
                    cell[0] = r
                    rel = widx - starts[r]
                w = arrays[r][rel, ids]
                if sub:
                    w = (w >> ((addr & 3) << 3)) & mask
                    if sign:
                        w = np.where(w & sign, (w - wrap) & MASK32, w)
                if rtrow is not None:   # a load to r0 still accesses
                    rtrow[cols] = w
                return pc4
            return op
        rsrc = regs[rt]     # rt == 0 reads the permanently-zero row
        if size == 4:
            def op(cols, ids):
                addr = (ra[cols] + imm) & MASK32
                if int(_or(addr)) & 3:
                    return slow_mem(rec, _K_STORE, ids, addr, pc4)
                widx = addr >> 2
                r = cell[0]
                rel = widx - starts[r]
                if int(_min(rel)) < 0 or int(_max(rel)) >= sizes[r]:
                    r = locate(widx)
                    if r < 0:
                        return slow_mem(rec, _K_STORE, ids, addr, pc4)
                    cell[0] = r
                    rel = widx - starts[r]
                arrays[r][rel, ids] = rsrc[cols]
                written[r][rel, ids] = True
                return pc4
            return op
        mask = 0xFF if size == 1 else 0xFFFF
        def op(cols, ids):
            addr = (ra[cols] + imm) & MASK32
            if amask and int(_or(addr)) & amask:
                return slow_mem(rec, _K_STORE, ids, addr, pc4)
            widx = addr >> 2
            r = cell[0]
            rel = widx - starts[r]
            if int(_min(rel)) < 0 or int(_max(rel)) >= sizes[r]:
                r = locate(widx)
                if r < 0:
                    return slow_mem(rec, _K_STORE, ids, addr, pc4)
                cell[0] = r
                rel = widx - starts[r]
            shift = (addr & 3) << 3
            w = arrays[r][rel, ids]
            arrays[r][rel, ids] = (w & ~(mask << shift)) \
                | ((rsrc[cols] & mask) << shift)
            written[r][rel, ids] = True
            return pc4
        return op

    def mk_bz(rs, ck, target, pc4):
        ra = regs[rs]
        if ck == 1:
            def op(cols, ids):
                t = ra[cols] == 0
                s = int(t.sum())
                if s == t.size:
                    return target
                if s == 0:
                    return pc4
                return (_SPLIT, np.where(t, target, pc4))
        elif ck == 2:
            def op(cols, ids):
                t = ra[cols] != 0
                s = int(t.sum())
                if s == t.size:
                    return target
                if s == 0:
                    return pc4
                return (_SPLIT, np.where(t, target, pc4))
        elif ck == 3:
            def op(cols, ids):
                t = ra[cols] >= 0x80000000
                s = int(t.sum())
                if s == t.size:
                    return target
                if s == 0:
                    return pc4
                return (_SPLIT, np.where(t, target, pc4))
        elif ck == 4:
            def op(cols, ids):
                v = ra[cols]
                t = (v == 0) | (v >= 0x80000000)
                s = int(t.sum())
                if s == t.size:
                    return target
                if s == 0:
                    return pc4
                return (_SPLIT, np.where(t, target, pc4))
        elif ck == 5:
            def op(cols, ids):
                v = ra[cols]
                t = (0 < v) & (v < 0x80000000)
                s = int(t.sum())
                if s == t.size:
                    return target
                if s == 0:
                    return pc4
                return (_SPLIT, np.where(t, target, pc4))
        else:
            def op(cols, ids):
                t = ra[cols] < 0x80000000
                s = int(t.sum())
                if s == t.size:
                    return target
                if s == 0:
                    return pc4
                return (_SPLIT, np.where(t, target, pc4))
        return op

    def mk_bcmp(rs, rt, eq_sense, target, pc4):
        ra = regs[rs]
        rb = regs[rt]
        if eq_sense:
            def op(cols, ids):
                t = ra[cols] == rb[cols]
                s = int(t.sum())
                if s == t.size:
                    return target
                if s == 0:
                    return pc4
                return (_SPLIT, np.where(t, target, pc4))
        else:
            def op(cols, ids):
                t = ra[cols] != rb[cols]
                s = int(t.sum())
                if s == t.size:
                    return target
                if s == 0:
                    return pc4
                return (_SPLIT, np.where(t, target, pc4))
        return op

    def mk_jump(target):
        def op(cols, ids):
            return target
        return op

    def mk_jal(target, pc4):
        r31 = regs[31]
        def op(cols, ids):
            r31[cols] = pc4
            return target
        return op

    def mk_jr(rd, rs, pc4):
        ra = regs[rs]
        # jalr writes before it reads: jalr rX, rX returns to PC+4
        rdrow = regs[rd] if rd else None
        def op(cols, ids):
            if rdrow is not None:
                rdrow[cols] = pc4
            tgt = ra[cols]
            t0 = int(tgt[0])
            if tgt.size == 1 or bool((tgt == t0).all()):
                return t0
            return (_SPLIT, tgt.copy())
        return op

    def mk_halt(pc4):
        evt = (_HALT, pc4)
        def op(cols, ids):
            return evt
        return op

    def mk_ctl(imm, pc4):
        def op(cols, ids):
            for c in ids.tolist():
                ctl_writes[c].append(imm)
            return pc4
        return op

    opmap = {}
    for i, rec in enumerate(recs):
        pc = (base + 4 * i) & MASK32
        k = rec[0]
        pc4 = rec[6]
        if k == _K_ALU:
            op = mk_alu(rec[1], rec[2], rec[3], rec[4], rec[5], pc4)
        elif k == _K_LUI:
            op = mk_lui(rec[1], rec[2], pc4)
        elif k == _K_LOAD or k == _K_STORE:
            op = mk_mem(rec)
        elif k == _K_BCMP:
            op = mk_bcmp(rec[2], rec[3], rec[4], rec[5], pc4)
        elif k == _K_BZ:
            op = mk_bz(rec[2], rec[4], rec[5], pc4)
        elif k == _K_JUMP:
            op = mk_jump(rec[5])
        elif k == _K_JAL:
            op = mk_jal(rec[5], pc4)
        elif k == _K_JR:
            op = mk_jr(0, rec[2], pc4)
        elif k == _K_JALR:
            op = mk_jr(rec[1], rec[2], pc4)
        elif k == _K_HALT:
            op = mk_halt(pc4)
        else:
            op = mk_ctl(rec[4], pc4)
        opmap[pc] = op
    return opmap


def run_batch(program: Program,
              memories: Sequence[MainMemory],
              max_instructions: int = 200_000_000) -> BatchResult:
    """Run ``program`` over ``len(memories)`` lanes in lockstep.

    ``memories[i]`` is lane *i*'s initial memory (the engine copies the
    word dict; the caller's objects are not mutated).  Passing the same
    ``MainMemory`` object for consecutive lanes (campaign-style
    replication) makes initialisation O(1) per repeated lane.  Returns
    a :class:`BatchResult`; see the module docstring for the exact
    per-lane equivalence contract with the serial engine.
    """
    n = len(memories)
    if n == 0:
        return BatchResult([])
    recs = _decode_batch(program)
    base = program.text_base
    entry = program.entry if program.entry is not None else base

    # per-lane initial snapshots: caller memory + text words, exactly
    # as FunctionalSimulator.__init__ touches them
    text_pairs = [((base + 4 * i) & MASK32, w & MASK32)
                  for i, w in enumerate(program.words)]
    inits: List[Dict[int, int]] = []
    for lane, m in enumerate(memories):
        if lane and memories[lane] is memories[lane - 1]:
            inits.append(inits[-1])
            continue
        d = dict(m._words)
        for a, w in text_pairs:
            d[a] = w
        inits.append(d)
    bmem = _BatchMemory(inits, n)

    regs = np.zeros((32, n), dtype=_I64)
    regs[29, :] = STACK_TOP
    pcs = np.full(n, entry, dtype=_I64)
    ret = np.zeros(n, dtype=_I64)
    alive = np.arange(n)
    out_halted = [False] * n
    out_err: List[Optional[Tuple[str, str]]] = [None] * n
    ctl_writes: List[List[int]] = [[] for _ in range(n)]
    opmap = _compile_ops(recs, base, regs, bmem, ctl_writes)
    opget = opmap.get

    def retire(ids, halted=False, err=None):
        """Freeze lane columns ``ids`` out of the live set."""
        nonlocal alive
        for c in ids:
            c = int(c)
            out_halted[c] = halted
            if err is not None:
                out_err[c] = err[c] if isinstance(err, dict) else err
        keep = ~np.isin(alive, ids)
        alive = alive[keep]

    def _fetch_err(pc):
        return ("ValueError", "pc 0x%x is not in the text segment" % pc)

    def _budget_err(pc):
        return ("SimulationError",
                "instruction budget (%d) exhausted at pc=0x%x"
                % (max_instructions, pc))

    # ------------------------------------------------------------------
    # main scheduler.  ret/pcs accounting is done here, not in the ops:
    # the converged loop batches a whole segment's retire counts into
    # ONE vector add instead of one per instruction.
    # ------------------------------------------------------------------
    while alive.size:
        apcs = pcs[alive]
        m = int(apcs.min())
        grp_mask = apcs == m
        if bool(grp_mask.all()):
            # ---- converged fast loop: every live lane at one PC.  The
            # PC advances as a scalar; lanes' ret counters catch up in
            # one vector add when the segment ends (event or budget).
            ids = alive
            cols = slice(None) if ids.size == n else ids
            headroom = max_instructions - int(ret[ids].max())
            pc = m
            steps = 0
            evt = None
            while steps < headroom:
                op = opget(pc)
                if op is None:
                    evt = (_FETCH, _fetch_err(pc))
                    break
                r = op(cols, ids)
                if type(r) is int:
                    pc = r
                    steps += 1
                else:
                    evt = r
                    break
            else:
                # a lane hit the instruction budget: flush the segment,
                # trap the lanes with no headroom left, the rest go on
                ret[cols] += steps
                pcs[cols] = pc
                exhausted = ids[np.asarray(ret[cols] >= max_instructions)]
                retire(exhausted, err=_budget_err(pc))
                continue
            ev, pay = evt
            if ev == _SPLIT:
                ret[cols] += steps + 1
                pcs[cols] = pay
            elif ev == _HALT:
                ret[cols] += steps + 1
                pcs[cols] = pay
                retire(ids, halted=True)
            elif ev == _FETCH:
                ret[cols] += steps
                pcs[cols] = pc   # lanes freeze AT the unfetchable pc
                retire(ids, err=pay)
            else:   # _MEMTRAP
                okc, badc, errs, pc4 = pay
                ret[cols] += steps
                pcs[cols] = pc
                if okc.size:
                    ret[okc] += 1
                    pcs[okc] = pc4
                retire(badc, err=errs)
        else:
            # ---- grouped (min-PC) round: step only the lanes at the
            # minimum live PC; lanes ahead wait for reconvergence
            ids = alive[grp_mask]
            over = ids[np.asarray(ret[ids] >= max_instructions)]
            if over.size:
                retire(over, err=_budget_err(m))
                continue
            op = opget(m)
            if op is None:
                retire(ids, err=_fetch_err(m))
                continue
            r = op(ids, ids)
            if type(r) is int:
                ret[ids] += 1
                pcs[ids] = r
                continue
            ev, pay = r
            if ev == _SPLIT:
                ret[ids] += 1
                pcs[ids] = pay
            elif ev == _HALT:
                ret[ids] += 1
                pcs[ids] = pay
                retire(ids, halted=True)
            elif ev == _FETCH:   # pragma: no cover — opget caught it
                retire(ids, err=pay)
            else:   # _MEMTRAP
                okc, badc, errs, pc4 = pay
                if okc.size:
                    ret[okc] += 1
                    pcs[okc] = pc4
                retire(badc, err=errs)

    lanes = []
    for lane in range(n):
        col = regs[:, lane]
        lanes.append(LaneResult(
            regs=[int(col[r]) for r in range(32)],
            memory=bmem.snapshot(lane, inits[lane]),
            pc=int(pcs[lane]),
            halted=out_halted[lane],
            instructions_retired=int(ret[lane]),
            ctl_writes=ctl_writes[lane],
            error=out_err[lane],
        ))
    return BatchResult(lanes)
