"""Application-Specific Branch Resolution (ASBR) — the paper's core.

ASBR folds selected conditional branches out of the instruction stream
at fetch time (Section 4 of the paper):

1. **Early condition evaluation** — whenever a register value is
   produced, the :class:`~repro.asbr.bdt.BranchDirectionTable` (BDT)
   records all six zero-comparison direction bits for that register.  A
   per-register *validity counter* tracks in-flight producers so a stale
   predicate can never be used.
2. **Branch folding** — the fetch stage looks the PC up in the
   :class:`~repro.asbr.bit.BranchIdentificationTable` (BIT).  On a hit
   with a valid predicate, the branch is *replaced* by its target
   instruction (taken) or fall-through instruction (not taken) and the
   PC skips past it: the branch never occupies a pipeline slot.

The statically-extracted per-branch record (BA, DI, BTA, BTI, BFI) is
:class:`~repro.asbr.branch_info.BranchInfo`; it is produced by
:func:`~repro.asbr.branch_info.extract_branch_info` from the assembled
program, exactly mirroring the paper's compile-time "pre-decoding".
Multiple BIT banks with run-time switching (Section 7) are provided by
:class:`~repro.asbr.bit.BankedBIT`.
"""

from repro.asbr.bdt import BDTEntry, BranchDirectionTable
from repro.asbr.bit import BankedBIT, BITEntry, BranchIdentificationTable
from repro.asbr.branch_info import (
    BranchInfo,
    FoldabilityError,
    extract_branch_info,
)
from repro.asbr.folding import ASBRUnit, FoldDecision, FoldStats

__all__ = [
    "BDTEntry",
    "BranchDirectionTable",
    "BITEntry",
    "BranchIdentificationTable",
    "BankedBIT",
    "BranchInfo",
    "FoldabilityError",
    "extract_branch_info",
    "ASBRUnit",
    "FoldDecision",
    "FoldStats",
]
