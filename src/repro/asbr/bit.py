"""Branch Identification Table (BIT) and its banked variant.

Each BIT entry stores the fields of paper Section 7: the branch PC (tag),
the two replacement instructions (``inst1``/``inst2`` = BTI/BFI), the
target address (BA/BTA) and the direction index (DI).  The table is
fully associative on the PC — it is small (16 entries in the paper's
experiments) precisely so this lookup stays cheap.

:class:`BankedBIT` implements the multi-loop extension: several BIT
copies with exactly one active at a time, switched "by writing a special
value to a control register just before entering the loop".
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.asbr.branch_info import BranchInfo
from repro.isa.conditions import Condition
from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.tablegeom import TARGET_BITS, entry_state_bits


class BITEntry:
    """One loaded BIT entry, with its replacement instructions pre-decoded.

    Real hardware stores the raw instruction words; we keep the decoded
    form alongside so the fetch stage does not re-decode every fold.
    """

    __slots__ = ("pc", "cond_reg", "condition", "bta",
                 "bti_word", "bfi_word", "bti", "bfi")

    def __init__(self, info: BranchInfo) -> None:
        self.pc = info.pc
        self.cond_reg = info.cond_reg
        self.condition: Condition = info.condition
        self.bta = info.bta
        self.bti_word = info.bti_word
        self.bfi_word = info.bfi_word
        self.bti: Instruction = decode(info.bti_word)
        self.bfi: Instruction = decode(info.bfi_word)

    def __repr__(self) -> str:
        return ("BITEntry(pc=0x%x, r%d %s, bta=0x%x)"
                % (self.pc, self.cond_reg, self.condition.value, self.bta))


#: Hardware bits per BIT entry, sized through the shared tagged-entry
#: model (:func:`repro.tablegeom.entry_state_bits`): PC tag + valid
#: around a payload of BTA (30) + two instruction words (32 each) + DI
#: (5-bit register + 3-bit condition).
BITS_PER_ENTRY = entry_state_bits(TARGET_BITS + 32 + 32 + 5 + 3)


class BranchIdentificationTable:
    """A single BIT bank."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity <= 0:
            raise ValueError("BIT capacity must be positive")
        self.capacity = capacity
        self._by_pc: Dict[int, BITEntry] = {}

    def load(self, infos: Sequence[BranchInfo]) -> None:
        """Replace the table contents (program-upload semantics)."""
        if len(infos) > self.capacity:
            raise ValueError("%d branches exceed BIT capacity %d"
                             % (len(infos), self.capacity))
        self._by_pc = {}
        for info in infos:
            if info.pc in self._by_pc:
                raise ValueError("duplicate BIT entry for pc 0x%x" % info.pc)
            self._by_pc[info.pc] = BITEntry(info)

    def lookup(self, pc: int) -> Optional[BITEntry]:
        """Fetch-stage PC match."""
        return self._by_pc.get(pc)

    def __len__(self) -> int:
        return len(self._by_pc)

    def __iter__(self):
        return iter(self._by_pc.values())

    @property
    def state_bits(self) -> int:
        return self.capacity * BITS_PER_ENTRY


class BankedBIT:
    """Several BIT copies with one active bank (paper Section 7).

    The pipeline routes committed ``ctlw`` writes to :meth:`select_bank`;
    fetch-stage lookups only ever see the active bank, so "at any moment
    only one BIT copy will be active, thus not exceeding the power
    consumption or performance limitations".
    """

    def __init__(self, num_banks: int = 1, capacity: int = 16) -> None:
        if num_banks <= 0:
            raise ValueError("need at least one bank")
        self.banks: List[BranchIdentificationTable] = [
            BranchIdentificationTable(capacity) for _ in range(num_banks)
        ]
        self.active = 0
        self.switches = 0

    def load_bank(self, bank: int, infos: Sequence[BranchInfo]) -> None:
        self.banks[bank].load(infos)

    def select_bank(self, bank: int) -> None:
        if not 0 <= bank < len(self.banks):
            raise ValueError("no BIT bank %d" % bank)
        if bank != self.active:
            self.switches += 1
        self.active = bank

    def lookup(self, pc: int) -> Optional[BITEntry]:
        return self.banks[self.active].lookup(pc)

    @property
    def state_bits(self) -> int:
        return sum(b.state_bits for b in self.banks)
