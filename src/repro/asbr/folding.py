"""The fetch-stage ASBR folding unit.

Implements the second phase of the methodology (paper Figure 4)::

    if (Fetch(PC)==branch_type)
      if (PC in {BA})
        if (PredicateStorage(DI)==taken)
          PC = BranchTargetAddress + 4;  instr = BranchTargetInstruction;
        else
          PC = PC + 8;                   instr = BranchFallthroughInstr;

plus the first phase (early condition evaluation) by delegating the
acquire/release/cancel protocol to the BDT.  The pipeline owns the
timing; this unit owns the decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.asbr.bdt import BranchDirectionTable
from repro.asbr.bit import BankedBIT, BITEntry
from repro.asbr.branch_info import BranchInfo
from repro.isa.instruction import Instruction

#: BDT update points and the fetch-to-availability *threshold* each
#: implies on a 5-stage pipeline (paper Section 5.2).
UPDATE_POINTS = ("commit", "mem", "execute")
THRESHOLD_BY_UPDATE = {"commit": 4, "mem": 3, "execute": 2}

#: Why a fetch-stage fold attempt failed (telemetry event payloads).
MISS_NO_BIT_ENTRY = "no_bit_entry"   # branch PC not in the active BIT bank
MISS_BDT_BUSY = "bdt_busy"           # BDT validity counter non-zero: an
                                     # in-flight producer may redefine the
                                     # predicate register (paper Section 4)
FOLD_MISS_REASONS = (MISS_NO_BIT_ENTRY, MISS_BDT_BUSY)


@dataclass(frozen=True)
class FoldDecision:
    """A successful fold performed during fetch."""

    branch_pc: int
    taken: bool
    instr: Instruction   # the injected replacement (BTI or BFI)
    instr_pc: int        # architectural address of the replacement
    next_pc: int         # where fetch continues


@dataclass
class FoldStats:
    """Folding-unit statistics for one simulation."""

    folded_taken: int = 0
    folded_not_taken: int = 0
    invalid_fallbacks: int = 0   # BIT hit but BDT counter non-zero
    per_pc_folds: dict = field(default_factory=dict)

    @property
    def folded(self) -> int:
        return self.folded_taken + self.folded_not_taken

    @property
    def attempts(self) -> int:
        return self.folded + self.invalid_fallbacks

    @property
    def fold_rate(self) -> float:
        return self.folded / self.attempts if self.attempts else 0.0


class ASBRUnit:
    """BIT + BDT + the fold decision logic.

    Parameters
    ----------
    bit:
        A (banked) Branch Identification Table, already loaded.
    bdt_update:
        Where produced values reach the early condition evaluation
        logic: ``"commit"`` (write-back; no extra hardware),
        ``"mem"`` (forwarding path after the memory stage; threshold 3)
        or ``"execute"`` (aggressive path after execute; threshold 2).
        Loads always deliver their value at the memory stage or later,
        regardless of this setting.
    """

    def __init__(self, bit: BankedBIT,
                 bdt: Optional[BranchDirectionTable] = None,
                 bdt_update: str = "mem") -> None:
        if bdt_update not in UPDATE_POINTS:
            raise ValueError("bdt_update must be one of %r" % (UPDATE_POINTS,))
        self.bit = bit
        self.bdt = bdt if bdt is not None else BranchDirectionTable()
        self.bdt_update = bdt_update
        self.stats = FoldStats()

    # ------------------------------------------------------------------
    @classmethod
    def from_branch_infos(cls, infos: Sequence[BranchInfo],
                          capacity: int = 16,
                          bdt_update: str = "mem") -> "ASBRUnit":
        """Build a single-bank unit loaded with ``infos``."""
        bit = BankedBIT(num_banks=1, capacity=capacity)
        bit.load_bank(0, infos)
        return cls(bit, bdt_update=bdt_update)

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> int:
        """Minimum definition-to-branch distance for a successful fold."""
        return THRESHOLD_BY_UPDATE[self.bdt_update]

    def try_fold(self, pc: int) -> Optional[FoldDecision]:
        """Attempt to fold the branch fetched at ``pc``.

        Returns None when the PC misses the BIT *or* when the predicate
        register has in-flight producers (the validity-counter fallback:
        the branch then proceeds normally through the auxiliary
        predictor).
        """
        entry: Optional[BITEntry] = self.bit.lookup(pc)
        if entry is None:
            return None
        direction = self.bdt.lookup(entry.cond_reg, entry.condition)
        if direction is None:
            self.stats.invalid_fallbacks += 1
            return None
        per = self.stats.per_pc_folds
        per[pc] = per.get(pc, 0) + 1
        if direction:
            self.stats.folded_taken += 1
            return FoldDecision(branch_pc=pc, taken=True, instr=entry.bti,
                                instr_pc=entry.bta, next_pc=entry.bta + 4)
        self.stats.folded_not_taken += 1
        return FoldDecision(branch_pc=pc, taken=False, instr=entry.bfi,
                            instr_pc=pc + 4, next_pc=pc + 8)

    def miss_reason(self, pc: int) -> str:
        """Why :meth:`try_fold` returned None for ``pc`` (telemetry).

        Pure — safe to call after a failed attempt without perturbing
        the fold statistics.
        """
        if self.bit.lookup(pc) is None:
            return MISS_NO_BIT_ENTRY
        return MISS_BDT_BUSY

    # ------------------------------------------------------------------
    # early-condition-evaluation protocol (forwarded from the pipeline)
    # ------------------------------------------------------------------
    def producer_decoded(self, reg: int) -> None:
        self.bdt.acquire(reg)

    def producer_value(self, reg: int, value: int) -> None:
        self.bdt.release(reg, value)

    def producer_squashed(self, reg: int) -> None:
        self.bdt.cancel(reg)

    def control_write(self, value: int) -> None:
        """A committed ``ctlw`` — select the BIT bank."""
        self.bit.select_bank(value)

    @property
    def state_bits(self) -> int:
        return self.bit.state_bits + self.bdt.state_bits
