"""Static per-branch information extraction ("compile-time pre-decoding").

The ASBR scheme needs five statically-available items per targeted
branch (paper Sections 4 and 7):

* **BA** — the branch's own address (the BIT tag),
* **DI** — the direction index: condition register + condition code,
* **BTA** — the branch target address,
* **BTI** — the instruction word at the target,
* **BFI** — the instruction word on the fall-through path.

:func:`extract_branch_info` reads all five from an assembled
:class:`~repro.asm.program.Program` and validates that the branch is
actually foldable hardware-wise.  The result is what gets "loaded into
the processor core in a similar way as the program code".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.asm.program import Program
from repro.isa.conditions import Condition
from repro.isa.instruction import Instruction


class FoldabilityError(ValueError):
    """The requested branch cannot be handled by ASBR hardware."""


@dataclass(frozen=True)
class BranchInfo:
    """The static branch record uploaded into one BIT entry."""

    pc: int                 # BA: branch address (BIT tag)
    cond_reg: int           # DI: register part
    condition: Condition    # DI: condition part
    bta: int                # branch target address
    bti_word: int           # encoded instruction at the target
    bfi_word: int           # encoded instruction at pc+4

    def describe(self, program: Program = None) -> str:
        label = ""
        if program is not None:
            name = program.label_at(self.bta)
            if name:
                label = " -> %s" % name
        return ("BranchInfo(pc=0x%x, r%d %s, bta=0x%x%s)"
                % (self.pc, self.cond_reg, self.condition.value,
                   self.bta, label))


def _check_replacement(instr: Instruction, role: str, pc: int) -> None:
    """Reject replacement instructions the folding unit cannot inject.

    The fold substitutes BTI/BFI into the fetch slot; a control
    instruction there would need its own fetch redirection in the same
    cycle, which the paper's (and our) folding hardware does not provide.
    """
    if instr.is_control:
        raise FoldabilityError(
            "branch at 0x%x: %s instruction %r is a control instruction "
            "and cannot be injected by the folding unit" % (pc, role, instr))
    if instr.spec.kind.name == "HALT":
        raise FoldabilityError(
            "branch at 0x%x: %s instruction is halt" % (pc, role))


def extract_branch_info(program: Program, pc: int) -> BranchInfo:
    """Build the :class:`BranchInfo` for the branch at address ``pc``.

    Raises :class:`FoldabilityError` when the branch is not a zero
    comparison (the per-register BDT cannot capture two-register
    compares) or when its target/fall-through instructions cannot be
    injected.
    """
    instr = program.instr_at(pc)
    if not instr.is_branch:
        raise FoldabilityError("0x%x is not a conditional branch" % pc)
    zc = instr.zero_condition
    if zc is None:
        raise FoldabilityError(
            "branch at 0x%x (%s) is not a zero comparison" % (pc, instr))
    cond, reg = zc
    if reg == 0:
        raise FoldabilityError(
            "branch at 0x%x tests r0; fold it in the compiler instead" % pc)
    bta = instr.branch_target(pc)
    try:
        bti = program.instr_at(bta)
        bti_word = program.words[program.index_of(bta)]
    except ValueError:
        raise FoldabilityError(
            "branch at 0x%x: target 0x%x outside text" % (pc, bta)) from None
    try:
        bfi = program.instr_at(pc + 4)
        bfi_word = program.words[program.index_of(pc + 4)]
    except ValueError:
        raise FoldabilityError(
            "branch at 0x%x: no fall-through instruction" % pc) from None
    _check_replacement(bti, "target (BTI)", pc)
    _check_replacement(bfi, "fall-through (BFI)", pc)
    return BranchInfo(pc=pc, cond_reg=reg, condition=cond, bta=bta,
                      bti_word=bti_word, bfi_word=bfi_word)


def extract_many(program: Program, pcs: Sequence[int]) -> List[BranchInfo]:
    """Extract info for several branches, preserving order."""
    return [extract_branch_info(program, pc) for pc in pcs]
