"""Branch Direction Table (BDT) with validity counters.

One entry per architectural register.  Each entry holds the six
pre-computed zero-comparison *direction bits* for the register's last
produced value, plus a counter of in-flight producers (paper Section 4,
Figure 8).  A predicate is only usable when its counter is zero —
otherwise an instruction still in the pipeline is about to redefine the
register and the stored bits may be stale.

Protocol (driven by the pipeline):

* ``acquire(reg)`` — a producer of ``reg`` was decoded.
* ``release(reg, value)`` — that producer's value arrived at the early
  condition evaluation logic (at commit, after MEM, or after EX,
  depending on the configured forwarding path, Section 5.2); the
  direction bits are refreshed and the counter decremented.
* ``cancel(reg)`` — the producer was squashed on a wrong path; the
  counter is decremented without touching the bits.
* ``lookup(reg, cond)`` — fetch-stage predicate read; returns None when
  the counter is non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.alu import to_signed
from repro.isa.conditions import Condition
from repro.isa.registers import NUM_REGS


def _bits_for_zero() -> Dict[Condition, bool]:
    """Direction bits matching the architectural reset value (0).

    Registers power on at zero, so the BDT must power on agreeing with
    them — otherwise a branch whose condition register is never written
    (or not yet written) would fold in the wrong direction.
    """
    return {
        Condition.EQZ: True,
        Condition.NEZ: False,
        Condition.LTZ: False,
        Condition.LEZ: True,
        Condition.GTZ: False,
        Condition.GEZ: True,
    }


@dataclass
class BDTEntry:
    """Direction bits + validity counter for one register."""

    bits: Dict[Condition, bool] = field(default_factory=_bits_for_zero)
    counter: int = 0

    def update_bits(self, value: int) -> None:
        s = to_signed(value)
        b = self.bits
        b[Condition.EQZ] = s == 0
        b[Condition.NEZ] = s != 0
        b[Condition.LTZ] = s < 0
        b[Condition.LEZ] = s <= 0
        b[Condition.GTZ] = s > 0
        b[Condition.GEZ] = s >= 0

    @property
    def valid(self) -> bool:
        return self.counter == 0


class BranchDirectionTable:
    """The full BDT: one :class:`BDTEntry` per register.

    ``counter_bits`` bounds the validity counter as real hardware would
    (the paper's counter is small); the simulator raises if the bound is
    exceeded, which flags a configuration that real hardware could not
    support.
    """

    def __init__(self, num_regs: int = NUM_REGS,
                 counter_bits: int = 3) -> None:
        self.num_regs = num_regs
        self.counter_bits = counter_bits
        self.counter_max = (1 << counter_bits) - 1
        self.entries: List[BDTEntry] = [BDTEntry() for _ in range(num_regs)]

    # ------------------------------------------------------------------
    def acquire(self, reg: int) -> None:
        """A producer of ``reg`` entered the pipeline (decode stage)."""
        e = self.entries[reg]
        if e.counter >= self.counter_max:
            raise OverflowError(
                "BDT validity counter overflow on r%d "
                "(more than %d in-flight producers)" % (reg, self.counter_max))
        e.counter += 1

    def release(self, reg: int, value: int) -> None:
        """A producer's value reached the early-evaluation logic."""
        e = self.entries[reg]
        if e.counter <= 0:
            raise RuntimeError("BDT release without acquire on r%d" % reg)
        e.counter -= 1
        e.update_bits(value)

    def cancel(self, reg: int) -> None:
        """A producer was squashed before producing a value."""
        e = self.entries[reg]
        if e.counter <= 0:
            raise RuntimeError("BDT cancel without acquire on r%d" % reg)
        e.counter -= 1

    def lookup(self, reg: int, cond: Condition) -> Optional[bool]:
        """Predicate value for ``reg cond 0``; None while invalid."""
        e = self.entries[reg]
        if e.counter:
            return None
        return e.bits[cond]

    # ------------------------------------------------------------------
    def set_value(self, reg: int, value: int) -> None:
        """Directly seed the bits for ``reg`` (initialisation/tests)."""
        self.entries[reg].update_bits(value)

    def reset(self) -> None:
        self.entries = [BDTEntry() for _ in range(self.num_regs)]

    @property
    def state_bits(self) -> int:
        """Hardware state: 6 direction bits + counter, per register."""
        return self.num_regs * (len(Condition) + self.counter_bits)

    def __repr__(self) -> str:
        busy = [i for i, e in enumerate(self.entries) if e.counter]
        return "BranchDirectionTable(%d regs, busy=%r)" % (self.num_regs,
                                                           busy)
