"""Abstract syntax tree for minic."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


# --- expressions --------------------------------------------------------
@dataclass
class IntLit:
    value: int


@dataclass
class Var:
    name: str


@dataclass
class Index:
    name: str
    index: "Expr"


@dataclass
class Unary:
    op: str                 # '-', '!', '~'
    operand: "Expr"


@dataclass
class Binary:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass
class Call:
    name: str
    args: List["Expr"]


Expr = object  # union of the above; duck-typed in the codegen


# --- statements ---------------------------------------------------------
@dataclass
class Declare:
    name: str
    init: Optional[Expr]


@dataclass
class Assign:
    target: object          # Var or Index
    value: Expr


@dataclass
class If:
    cond: Expr
    then: List["Stmt"]
    orelse: List["Stmt"] = field(default_factory=list)


@dataclass
class While:
    cond: Expr
    body: List["Stmt"]


@dataclass
class For:
    init: Optional["Stmt"]
    cond: Optional[Expr]
    step: Optional["Stmt"]
    body: List["Stmt"]


@dataclass
class Return:
    value: Optional[Expr]


@dataclass
class Break:
    pass


@dataclass
class Continue:
    pass


@dataclass
class ExprStmt:
    expr: Expr


Stmt = object


# --- top level ----------------------------------------------------------
@dataclass
class GlobalVar:
    name: str
    size: Optional[int]     # None = scalar, else array element count
    init: List[int] = field(default_factory=list)


@dataclass
class Function:
    name: str
    params: List[str]
    body: List[Stmt]


@dataclass
class Unit:
    globals: List[GlobalVar]
    functions: List[Function]
