"""Recursive-descent parser with precedence climbing for minic."""

from __future__ import annotations

from typing import List, Optional

from repro.minic import ast
from repro.minic.lexer import Token, tokenize


class ParseError(ValueError):
    def __init__(self, message: str, token: Token) -> None:
        super().__init__("line %d: %s (at %r)"
                         % (token.line, message, token.value))
        self.token = token


#: binary operator precedence (C-like); higher binds tighter
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.cur
        self.pos += 1
        return tok

    def accept(self, kind: str) -> Optional[Token]:
        if self.cur.kind == kind:
            return self.advance()
        return None

    def accept_kw(self, word: str) -> Optional[Token]:
        if self.cur.kind == "kw" and self.cur.value == word:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        if self.cur.kind != kind:
            raise ParseError("expected %r" % kind, self.cur)
        return self.advance()

    def expect_kw(self, word: str) -> Token:
        if not (self.cur.kind == "kw" and self.cur.value == word):
            raise ParseError("expected %r" % word, self.cur)
        return self.advance()

    # -- top level -------------------------------------------------------
    def unit(self) -> ast.Unit:
        globals_: List[ast.GlobalVar] = []
        functions: List[ast.Function] = []
        while self.cur.kind != "eof":
            self.expect_kw("int")
            name = self.expect("ident").value
            if self.cur.kind == "(":
                functions.append(self._function(name))
            else:
                globals_.append(self._global(name))
        return ast.Unit(globals_, functions)

    def _global(self, name: str) -> ast.GlobalVar:
        size = None
        init: List[int] = []
        if self.accept("["):
            size = self._int_literal()
            self.expect("]")
        if self.accept("="):
            if size is None:
                init = [self._int_literal()]
            else:
                self.expect("{")
                init.append(self._int_literal())
                while self.accept(","):
                    init.append(self._int_literal())
                self.expect("}")
                if len(init) > size:
                    raise ParseError("too many initialisers", self.cur)
        self.expect(";")
        return ast.GlobalVar(name, size, init)

    def _int_literal(self) -> int:
        negative = bool(self.accept("-"))
        tok = self.expect("int")
        value = int(tok.value, 0)
        return -value if negative else value

    def _function(self, name: str) -> ast.Function:
        self.expect("(")
        params: List[str] = []
        if self.cur.kind != ")":
            while True:
                self.expect_kw("int")
                params.append(self.expect("ident").value)
                if not self.accept(","):
                    break
        self.expect(")")
        if len(params) > 4:
            raise ParseError("more than 4 parameters", self.cur)
        body = self._block()
        return ast.Function(name, params, body)

    # -- statements --------------------------------------------------------
    def _block(self) -> List[ast.Stmt]:
        self.expect("{")
        stmts: List[ast.Stmt] = []
        while not self.accept("}"):
            stmts.append(self._statement())
        return stmts

    def _statement(self) -> ast.Stmt:
        if self.cur.kind == "{":
            # flatten anonymous blocks into an If with true condition?
            # simpler: represent as If(1){...}
            return ast.If(ast.IntLit(1), self._block())
        if self.accept_kw("int"):
            name = self.expect("ident").value
            init = self._expression() if self.accept("=") else None
            self.expect(";")
            return ast.Declare(name, init)
        if self.accept_kw("if"):
            self.expect("(")
            cond = self._expression()
            self.expect(")")
            then = self._block_or_single()
            orelse: List[ast.Stmt] = []
            if self.accept_kw("else"):
                orelse = self._block_or_single()
            return ast.If(cond, then, orelse)
        if self.accept_kw("while"):
            self.expect("(")
            cond = self._expression()
            self.expect(")")
            return ast.While(cond, self._block_or_single())
        if self.accept_kw("for"):
            self.expect("(")
            init = None if self.cur.kind == ";" else self._simple_stmt()
            self.expect(";")
            cond = None if self.cur.kind == ";" else self._expression()
            self.expect(";")
            step = None if self.cur.kind == ")" else self._simple_stmt()
            self.expect(")")
            return ast.For(init, cond, step, self._block_or_single())
        if self.accept_kw("return"):
            value = None if self.cur.kind == ";" else self._expression()
            self.expect(";")
            return ast.Return(value)
        if self.accept_kw("break"):
            self.expect(";")
            return ast.Break()
        if self.accept_kw("continue"):
            self.expect(";")
            return ast.Continue()
        stmt = self._simple_stmt()
        self.expect(";")
        return stmt

    def _block_or_single(self) -> List[ast.Stmt]:
        if self.cur.kind == "{":
            return self._block()
        return [self._statement()]

    def _simple_stmt(self) -> ast.Stmt:
        """Assignment, declaration (in for-init) or expression."""
        if self.cur.kind == "kw" and self.cur.value == "int":
            self.advance()
            name = self.expect("ident").value
            init = self._expression() if self.accept("=") else None
            return ast.Declare(name, init)
        # lookahead for assignment: ident [expr]? =
        save = self.pos
        if self.cur.kind == "ident":
            name = self.advance().value
            if self.accept("="):
                return ast.Assign(ast.Var(name), self._expression())
            if self.cur.kind == "[":
                self.advance()
                index = self._expression()
                self.expect("]")
                if self.accept("="):
                    return ast.Assign(ast.Index(name, index),
                                      self._expression())
            self.pos = save
        return ast.ExprStmt(self._expression())

    # -- expressions --------------------------------------------------------
    def _expression(self) -> ast.Expr:
        return self._binary(1)

    def _binary(self, min_prec: int) -> ast.Expr:
        left = self._unary()
        while True:
            op = self.cur.kind
            prec = _PRECEDENCE.get(op)
            if prec is None or prec < min_prec:
                return left
            self.advance()
            right = self._binary(prec + 1)   # left-associative
            left = ast.Binary(op, left, right)

    def _unary(self) -> ast.Expr:
        if self.cur.kind in ("-", "!", "~"):
            op = self.advance().kind
            return ast.Unary(op, self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self.cur
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(int(tok.value, 0))
        if tok.kind == "(":
            self.advance()
            expr = self._expression()
            self.expect(")")
            return expr
        if tok.kind == "ident":
            name = self.advance().value
            if self.accept("("):
                args: List[ast.Expr] = []
                if self.cur.kind != ")":
                    while True:
                        args.append(self._expression())
                        if not self.accept(","):
                            break
                self.expect(")")
                if len(args) > 4:
                    raise ParseError("more than 4 arguments", tok)
                return ast.Call(name, args)
            if self.accept("["):
                index = self._expression()
                self.expect("]")
                return ast.Index(name, index)
            return ast.Var(name)
        raise ParseError("expected expression", tok)


def parse(source: str) -> ast.Unit:
    """Parse minic source into an AST."""
    return _Parser(tokenize(source)).unit()
