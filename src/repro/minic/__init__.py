"""minic — a small C-like compiler targeting the repro ISA.

The paper's toolchain compiles C with gcc and then applies (manual)
scheduling for ASBR; this package closes the same loop for our ISA: a
integer C subset is compiled to assembly text, assembled by
:mod:`repro.asm`, optionally improved by the :mod:`repro.sched` list
scheduler, and then profiled/folded like any hand-written program.

Language subset:

* types: ``int`` (32-bit) scalars, global ``int`` arrays;
* functions with up to four ``int`` parameters, recursion allowed;
* statements: declarations with initialisers, assignment (scalars and
  array elements), ``if``/``else``, ``while``, ``for``, ``break``,
  ``continue``, ``return``, blocks, expression statements;
* expressions: integer literals, variables, array indexing, calls,
  unary ``- ! ~``, binary ``* / % + - << >> < <= > >= == != & ^ |
  && ||`` (C precedence; ``&&``/``||`` short-circuit; division
  truncates toward zero as on the target).

Entry point: :func:`compile_source` returns assembly text whose
``main`` stub calls the user's ``main()`` and halts.
"""

from repro.minic.lexer import Token, LexerError, tokenize
from repro.minic.parser import ParseError, parse
from repro.minic.codegen import CodegenError, compile_source, compile_to_program

__all__ = [
    "Token",
    "LexerError",
    "tokenize",
    "ParseError",
    "parse",
    "CodegenError",
    "compile_source",
    "compile_to_program",
]
