"""Code generation: minic AST -> repro assembly text.

A straightforward stack-machine translation: every expression leaves
its value in ``v0``; binary operators push the left operand on the
(real) stack and pop it into ``t0``.  Locals and parameters live in a
frame addressed off ``fp`` (the expression stack moves ``sp``, the
frame pointer is stable), so generated code is obviously correct at the
cost of density — exactly what the paper's ASBR selection likes, since
fold-distance then comes from the list scheduler, not from luck.

Calling convention: up to four arguments in ``a0``-``a3``, result in
``v0``, ``ra``/``fp`` callee-saved in the frame.  The emitted ``main``
is a stub that calls the user's ``main()`` and halts, leaving the
returned value in ``v0``.

C semantics notes: ``>>`` on ``int`` is arithmetic, division truncates
toward zero, ``&&``/``||`` short-circuit and normalise to 0/1, all
arithmetic wraps at 32 bits.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.minic import ast
from repro.minic.parser import parse


class CodegenError(ValueError):
    pass


#: binary op -> instruction template(s) computing  v0 = t0 OP v0
_SIMPLE_BINOPS = {
    "+": ["addu v0, t0, v0"],
    "-": ["subu v0, t0, v0"],
    "*": ["mul  v0, t0, v0"],
    "/": ["div  v0, t0, v0"],
    "%": ["rem  v0, t0, v0"],
    "&": ["and  v0, t0, v0"],
    "|": ["or   v0, t0, v0"],
    "^": ["xor  v0, t0, v0"],
    "<<": ["sllv v0, t0, v0"],
    ">>": ["srav v0, t0, v0"],
    "<": ["slt  v0, t0, v0"],
    ">": ["slt  v0, v0, t0"],
    "<=": ["slt  v0, v0, t0", "xori v0, v0, 1"],
    ">=": ["slt  v0, t0, v0", "xori v0, v0, 1"],
    "==": ["subu v0, t0, v0", "sltiu v0, v0, 1"],
    "!=": ["subu v0, t0, v0", "sltu v0, r0, v0"],
}


class _FunctionCompiler:
    def __init__(self, unit_globals: Dict[str, ast.GlobalVar],
                 functions: Dict[str, ast.Function],
                 fn: ast.Function) -> None:
        self.globals = unit_globals
        self.functions = functions
        self.fn = fn
        self.lines: List[str] = []
        self.slots: Dict[str, int] = {}
        self.label_counter = 0
        self.loop_stack: List[tuple] = []   # (break_label, continue_label)

        for param in fn.params:
            self._declare(param)
        self._collect_locals(fn.body)
        self.frame = 8 + 4 * max(len(self.slots), 1)

    # ------------------------------------------------------------------
    def _declare(self, name: str) -> None:
        if name not in self.slots:
            self.slots[name] = len(self.slots)

    def _collect_locals(self, stmts) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Declare):
                self._declare(stmt.name)
            elif isinstance(stmt, ast.If):
                self._collect_locals(stmt.then)
                self._collect_locals(stmt.orelse)
            elif isinstance(stmt, ast.While):
                self._collect_locals(stmt.body)
            elif isinstance(stmt, ast.For):
                if stmt.init is not None:
                    self._collect_locals([stmt.init])
                if stmt.step is not None:
                    self._collect_locals([stmt.step])
                self._collect_locals(stmt.body)

    def _label(self, hint: str) -> str:
        self.label_counter += 1
        return "L%s_%d_%s" % (self.fn.name, self.label_counter, hint)

    def emit(self, text: str) -> None:
        self.lines.append("    " + text)

    def emit_label(self, name: str) -> None:
        self.lines.append(name + ":")

    # ------------------------------------------------------------------
    def compile(self) -> List[str]:
        self.emit_label("fn_%s" % self.fn.name)
        self.emit("addi sp, sp, -%d" % self.frame)
        self.emit("sw   ra, %d(sp)" % (self.frame - 4))
        self.emit("sw   fp, %d(sp)" % (self.frame - 8))
        self.emit("move fp, sp")
        for i, param in enumerate(self.fn.params):
            self.emit("sw   a%d, %d(fp)" % (i, 4 * self.slots[param]))
        for stmt in self.fn.body:
            self.stmt(stmt)
        # implicit `return 0` falling off the end
        self.emit("li   v0, 0")
        self.emit_label("fn_%s__ret" % self.fn.name)
        self.emit("move sp, fp")
        self.emit("lw   ra, %d(sp)" % (self.frame - 4))
        self.emit("lw   fp, %d(sp)" % (self.frame - 8))
        self.emit("addi sp, sp, %d" % self.frame)
        self.emit("jr   ra")
        return self.lines

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def stmt(self, node) -> None:
        if isinstance(node, ast.Declare):
            if node.init is not None:
                self.expr(node.init)
                self.emit("sw   v0, %d(fp)" % (4 * self.slots[node.name]))
        elif isinstance(node, ast.Assign):
            self._assign(node.target, node.value)
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.expr(node.value)
            else:
                self.emit("li   v0, 0")
            self.emit("b    fn_%s__ret" % self.fn.name)
        elif isinstance(node, ast.Break):
            if not self.loop_stack:
                raise CodegenError("break outside loop in %s"
                                   % self.fn.name)
            self.emit("b    %s" % self.loop_stack[-1][0])
        elif isinstance(node, ast.Continue):
            if not self.loop_stack:
                raise CodegenError("continue outside loop in %s"
                                   % self.fn.name)
            self.emit("b    %s" % self.loop_stack[-1][1])
        elif isinstance(node, ast.ExprStmt):
            self.expr(node.expr)
        else:  # pragma: no cover - parser produces no other nodes
            raise CodegenError("unknown statement %r" % (node,))

    def _assign(self, target, value) -> None:
        if isinstance(target, ast.Var):
            self.expr(value)
            self._store_var(target.name)
        elif isinstance(target, ast.Index):
            self._array_address(target)
            self._push()
            self.expr(value)
            self._pop("t0")
            self.emit("sw   v0, 0(t0)")
        else:  # pragma: no cover
            raise CodegenError("bad assignment target")

    def _branch_if_false(self, cond, label: str) -> None:
        """Evaluate ``cond`` and branch to ``label`` when it is false.

        ASBR-aware special case: when the condition is a plain local
        variable, load it through ``t2`` instead of the ``v0``
        accumulator.  Every other generated instruction writes ``v0``,
        so a v0-based predicate can never be hoisted; a t2-based load
        only carries a memory dependence on the store that produced the
        variable, and the list scheduler can then widen the
        definition-to-branch distance past the ASBR threshold
        (Section 5.1's compiler support, automated).
        """
        if isinstance(cond, ast.Var) and cond.name in self.slots:
            self.emit("lw   t2, %d(fp)" % (4 * self.slots[cond.name]))
            self.emit("beqz t2, %s" % label)
            return
        self.expr(cond)
        self.emit("beqz v0, %s" % label)

    def _if(self, node: ast.If) -> None:
        else_label = self._label("else")
        end_label = self._label("endif")
        self._branch_if_false(node.cond,
                              else_label if node.orelse else end_label)
        for s in node.then:
            self.stmt(s)
        if node.orelse:
            self.emit("b    %s" % end_label)
            self.emit_label(else_label)
            for s in node.orelse:
                self.stmt(s)
        self.emit_label(end_label)

    def _while(self, node: ast.While) -> None:
        top = self._label("while")
        end = self._label("endwhile")
        self.emit_label(top)
        self._branch_if_false(node.cond, end)
        self.loop_stack.append((end, top))
        for s in node.body:
            self.stmt(s)
        self.loop_stack.pop()
        self.emit("b    %s" % top)
        self.emit_label(end)

    def _for(self, node: ast.For) -> None:
        top = self._label("for")
        step_label = self._label("forstep")
        end = self._label("endfor")
        if node.init is not None:
            self.stmt(node.init)
        self.emit_label(top)
        if node.cond is not None:
            self._branch_if_false(node.cond, end)
        self.loop_stack.append((end, step_label))
        for s in node.body:
            self.stmt(s)
        self.loop_stack.pop()
        self.emit_label(step_label)
        if node.step is not None:
            self.stmt(node.step)
        self.emit("b    %s" % top)
        self.emit_label(end)

    # ------------------------------------------------------------------
    # expressions (result in v0)
    # ------------------------------------------------------------------
    def _push(self) -> None:
        self.emit("addi sp, sp, -4")
        self.emit("sw   v0, 0(sp)")

    def _pop(self, reg: str) -> None:
        self.emit("lw   %s, 0(sp)" % reg)
        self.emit("addi sp, sp, 4")

    def expr(self, node) -> None:
        if isinstance(node, ast.IntLit):
            self.emit("li   v0, %d" % node.value)
        elif isinstance(node, ast.Var):
            self._load_var(node.name)
        elif isinstance(node, ast.Index):
            self._array_address(node)
            self.emit("lw   v0, 0(v0)")
        elif isinstance(node, ast.Unary):
            self.expr(node.operand)
            if node.op == "-":
                self.emit("subu v0, r0, v0")
            elif node.op == "~":
                self.emit("nor  v0, v0, r0")
            else:   # '!'
                self.emit("sltiu v0, v0, 1")
        elif isinstance(node, ast.Binary):
            if node.op in ("&&", "||"):
                self._short_circuit(node)
            else:
                self.expr(node.left)
                self._push()
                self.expr(node.right)
                self._pop("t0")
                for line in _SIMPLE_BINOPS[node.op]:
                    self.emit(line)
        elif isinstance(node, ast.Call):
            self._call(node)
        else:  # pragma: no cover
            raise CodegenError("unknown expression %r" % (node,))

    def _short_circuit(self, node: ast.Binary) -> None:
        out = self._label("sc_out")
        decided = self._label("sc_decided")
        self.expr(node.left)
        if node.op == "&&":
            self.emit("beqz v0, %s" % decided)   # left false -> 0
        else:
            self.emit("bnez v0, %s" % decided)   # left true -> 1
        self.expr(node.right)
        self.emit("sltu v0, r0, v0")             # normalise to 0/1
        self.emit("b    %s" % out)
        self.emit_label(decided)
        self.emit("li   v0, %d" % (0 if node.op == "&&" else 1))
        self.emit_label(out)

    def _call(self, node: ast.Call) -> None:
        if node.name not in self.functions:
            raise CodegenError("call to undefined function %r"
                               % node.name)
        expected = len(self.functions[node.name].params)
        if expected != len(node.args):
            raise CodegenError(
                "%s() takes %d arguments, got %d"
                % (node.name, expected, len(node.args)))
        for arg in node.args:
            self.expr(arg)
            self._push()
        for i in range(len(node.args) - 1, -1, -1):
            self._pop("a%d" % i)
        self.emit("jal  fn_%s" % node.name)

    # ------------------------------------------------------------------
    def _load_var(self, name: str) -> None:
        if name in self.slots:
            self.emit("lw   v0, %d(fp)" % (4 * self.slots[name]))
        elif name in self.globals:
            if self.globals[name].size is not None:
                raise CodegenError("array %r used without index" % name)
            self.emit("la   t1, g_%s" % name)
            self.emit("lw   v0, 0(t1)")
        else:
            raise CodegenError("undefined variable %r in %s"
                               % (name, self.fn.name))

    def _store_var(self, name: str) -> None:
        if name in self.slots:
            self.emit("sw   v0, %d(fp)" % (4 * self.slots[name]))
        elif name in self.globals:
            if self.globals[name].size is not None:
                raise CodegenError("array %r assigned without index"
                                   % name)
            self.emit("la   t1, g_%s" % name)
            self.emit("sw   v0, 0(t1)")
        else:
            raise CodegenError("undefined variable %r in %s"
                               % (name, self.fn.name))

    def _array_address(self, node: ast.Index) -> None:
        """Leave &name[index] in v0."""
        g = self.globals.get(node.name)
        if g is None or g.size is None:
            raise CodegenError("%r is not a global array" % node.name)
        self.expr(node.index)
        self.emit("sll  v0, v0, 2")
        self.emit("la   t1, g_%s" % node.name)
        self.emit("addu v0, v0, t1")


def compile_unit(unit: ast.Unit) -> str:
    """Compile a parsed unit to assembly text."""
    globals_ = {}
    for g in unit.globals:
        if g.name in globals_:
            raise CodegenError("duplicate global %r" % g.name)
        globals_[g.name] = g
    functions = {}
    for f in unit.functions:
        if f.name in functions:
            raise CodegenError("duplicate function %r" % f.name)
        functions[f.name] = f
    if "main" not in functions:
        raise CodegenError("no main() function")
    if functions["main"].params:
        raise CodegenError("main() takes no parameters")

    lines: List[str] = ["# generated by repro.minic", ".data"]
    for g in globals_.values():
        if g.size is None:
            value = g.init[0] if g.init else 0
            lines.append("g_%s: .word %d" % (g.name, value))
        else:
            if g.init:
                lines.append("g_%s: .word %s"
                             % (g.name, ", ".join(str(v) for v in g.init)))
                remaining = g.size - len(g.init)
                if remaining:
                    lines.append("    .space %d" % (4 * remaining))
            else:
                lines.append("g_%s: .space %d" % (g.name, 4 * g.size))

    lines.append(".text")
    lines.append("main:")
    lines.append("    jal  fn_main")
    lines.append("    halt")
    for f in unit.functions:
        lines.extend(_FunctionCompiler(globals_, functions, f).compile())
    return "\n".join(lines) + "\n"


def compile_source(source: str) -> str:
    """minic source -> assembly text."""
    return compile_unit(parse(source))


def compile_to_program(source: str):
    """minic source -> assembled :class:`~repro.asm.program.Program`."""
    from repro.asm import assemble
    return assemble(compile_source(source))
