"""Tokenizer for the minic language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = {"int", "if", "else", "while", "for", "return", "break",
            "continue"}

#: multi-character operators, longest first
_OPERATORS = ["<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
              "+", "-", "*", "/", "%", "<", ">", "=", "!", "~",
              "&", "|", "^", "(", ")", "{", "}", "[", "]", ",", ";"]


class LexerError(ValueError):
    def __init__(self, message: str, line: int) -> None:
        super().__init__("line %d: %s" % (line, message))
        self.line = line


@dataclass(frozen=True)
class Token:
    """One lexical token: kind is 'int', 'ident', 'kw' or the operator
    text itself."""

    kind: str
    value: str
    line: int

    def __repr__(self) -> str:
        return "Token(%s, %r)" % (self.kind, self.value)


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        c = source[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexerError("unterminated comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if c.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
            else:
                while j < n and source[j].isdigit():
                    j += 1
            tokens.append(Token("int", source[i:j], line))
            i = j
            continue
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            tokens.append(Token("kw" if word in KEYWORDS else "ident",
                                word, line))
            i = j
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line))
                i += len(op)
                break
        else:
            raise LexerError("unexpected character %r" % c, line)
    tokens.append(Token("eof", "", line))
    return tokens
