"""Typed ASBR design space: points, grids, and named presets.

A :class:`DesignPoint` is one *hardware configuration* of the paper's
mechanism — auxiliary predictor (family and size, as a
``make_predictor`` spec), whether the ASBR unit is present, its BIT
capacity, the BDT forwarding path (= the threshold: commit→4, mem→3,
execute→2, Section 5.2), and the profile-driven selection policy's
knobs (:func:`repro.profiling.select_branches`).  Points are frozen,
hashable and canonical — a non-ASBR point always carries the default
ASBR knobs, so two ways of writing "just a bimodal-512" are one point,
one journal key and one cache entry.

A :class:`ConfigSpace` is the cross product of per-dimension value
lists, deduplicated the same way.  It is what search drivers
(:mod:`repro.dse.search`) enumerate or sample, and its :meth:`digest`
pins a journal to the space it was produced from.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields
from typing import Dict, List, Tuple

from repro.asbr.folding import THRESHOLD_BY_UPDATE
from repro.runner.pool import RunSpec

BDT_UPDATES: Tuple[str, ...] = ("commit", "mem", "execute")

#: Canonical ASBR-knob values carried by non-ASBR points.
_NO_ASBR = {"bit_capacity": 16, "bdt_update": "execute",
            "min_fold_fraction": 0.5, "min_count": 16}

#: Canonical frontend-knob values carried by points without the
#: decoupled front end (same dedup rule as :data:`_NO_ASBR`).
_NO_FRONTEND = {"btb_l1_entries": 64, "btb_l2_entries": 2048,
                "btb_l2_assoc": 4, "ftq_depth": 8, "fdip": False}

BACKENDS: Tuple[str, ...] = ("inorder", "ooo")

#: Canonical out-of-order machine knobs carried by in-order points
#: (same dedup rule as :data:`_NO_ASBR` / :data:`_NO_FRONTEND`).
_NO_OOO = {"issue_width": 2, "rob_size": 32, "iq_size": 16,
           "phys_regs": 64}


@dataclass(frozen=True)
class DesignPoint:
    """One hardware configuration in the ASBR design space."""

    predictor_spec: str = "bimodal-512-512"
    with_asbr: bool = True
    bit_capacity: int = 16
    bdt_update: str = "execute"
    min_fold_fraction: float = 0.5
    min_count: int = 16
    frontend: bool = False
    btb_l1_entries: int = 64
    btb_l2_entries: int = 2048
    btb_l2_assoc: int = 4
    ftq_depth: int = 8
    fdip: bool = False
    backend: str = "inorder"
    issue_width: int = 2
    rob_size: int = 32
    iq_size: int = 16
    phys_regs: int = 64

    def __post_init__(self) -> None:
        if self.bdt_update not in BDT_UPDATES:
            raise ValueError("unknown bdt_update %r (have %s)"
                             % (self.bdt_update, ", ".join(BDT_UPDATES)))
        if self.bit_capacity <= 0:
            raise ValueError("bit_capacity must be positive")
        if not 0.0 <= self.min_fold_fraction <= 1.0:
            raise ValueError("min_fold_fraction must be in [0, 1]")
        if self.min_count < 0:
            raise ValueError("min_count must be >= 0")
        if not self.with_asbr:
            # canonicalise: ASBR knobs are meaningless without the unit
            for name, value in _NO_ASBR.items():
                object.__setattr__(self, name, value)
        if self.frontend:
            # shape validation is the frontend package's job; importing
            # it lazily keeps repro.dse importable on its own
            from repro.frontend import FrontendConfig
            FrontendConfig(btb_l1_entries=self.btb_l1_entries,
                           btb_l2_entries=self.btb_l2_entries,
                           btb_l2_assoc=self.btb_l2_assoc,
                           ftq_depth=self.ftq_depth,
                           fdip=self.fdip)
        else:
            for name, value in _NO_FRONTEND.items():
                object.__setattr__(self, name, value)
        if self.backend not in BACKENDS:
            raise ValueError("unknown backend %r (have %s)"
                             % (self.backend, ", ".join(BACKENDS)))
        if self.backend == "ooo":
            # shape validation lives with the machine; lazy import for
            # the same reason as the frontend above
            from repro.sim.ooo import OoOConfig
            OoOConfig(issue_width=self.issue_width,
                      rob_size=self.rob_size,
                      iq_size=self.iq_size,
                      phys_regs=self.phys_regs)
        else:
            for name, value in _NO_OOO.items():
                object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    @property
    def threshold(self) -> int:
        """The paper's pipeline threshold for this forwarding path."""
        return THRESHOLD_BY_UPDATE[self.bdt_update]

    def key(self) -> str:
        """Stable identity string (journal keys, dedup, display)."""
        if not self.with_asbr:
            base = "pred=%s" % self.predictor_spec
        else:
            base = ("pred=%s asbr bit=%d upd=%s ff=%.3f mc=%d"
                    % (self.predictor_spec, self.bit_capacity,
                       self.bdt_update, self.min_fold_fraction,
                       self.min_count))
        if self.frontend:
            base += (" fe btb=%d/%dx%d ftq=%d fdip=%d"
                     % (self.btb_l1_entries, self.btb_l2_entries,
                        self.btb_l2_assoc, self.ftq_depth,
                        int(self.fdip)))
        if self.backend == "ooo":
            base += (" ooo w=%d rob=%d iq=%d preg=%d"
                     % (self.issue_width, self.rob_size,
                        self.iq_size, self.phys_regs))
        return base

    def label(self) -> str:
        """Short human form for tables and plots."""
        if not self.with_asbr:
            base = self.predictor_spec
        else:
            base = "%s+asbr(bit%d,t%d)" % (self.predictor_spec,
                                           self.bit_capacity,
                                           self.threshold)
        if self.frontend:
            base += "+fe(btb%d/%d,ftq%d%s)" % (
                self.btb_l1_entries, self.btb_l2_entries,
                self.ftq_depth, ",fdip" if self.fdip else "")
        if self.backend == "ooo":
            base += "+ooo(w%d,rob%d)" % (self.issue_width,
                                         self.rob_size)
        return base

    def to_spec(self, benchmark: str, n_samples: int,
                seed: int, engine: str = "interp") -> RunSpec:
        """The :class:`RunSpec` evaluating this point on one workload.

        ``engine`` selects the execution engine; it is not part of the
        point's identity (results are bit-identical across engines).
        """
        return RunSpec(benchmark=benchmark, n_samples=n_samples,
                       seed=seed, predictor_spec=self.predictor_spec,
                       with_asbr=self.with_asbr,
                       bit_capacity=self.bit_capacity,
                       bdt_update=self.bdt_update,
                       min_fold_fraction=self.min_fold_fraction,
                       min_count=self.min_count,
                       engine=engine,
                       frontend=self.frontend,
                       btb_l1_entries=self.btb_l1_entries,
                       btb_l2_entries=self.btb_l2_entries,
                       btb_l2_assoc=self.btb_l2_assoc,
                       ftq_depth=self.ftq_depth,
                       fdip=self.fdip,
                       backend=self.backend,
                       issue_width=self.issue_width,
                       rob_size=self.rob_size,
                       iq_size=self.iq_size,
                       phys_regs=self.phys_regs)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "DesignPoint":
        # missing keys take the field default so journals written
        # before the frontend dimensions existed still load
        return cls(**{f.name: d.get(f.name, f.default)
                      for f in fields(cls)})


def _tuple(values) -> tuple:
    out = tuple(values)
    if not out:
        raise ValueError("every space dimension needs at least one value")
    return out


@dataclass(frozen=True)
class ConfigSpace:
    """Cross product of per-dimension value lists."""

    predictors: Tuple[str, ...] = ("bimodal-512-512",)
    asbr: Tuple[bool, ...] = (False, True)
    bit_capacities: Tuple[int, ...] = (16,)
    bdt_updates: Tuple[str, ...] = BDT_UPDATES
    min_fold_fractions: Tuple[float, ...] = (0.5,)
    min_counts: Tuple[int, ...] = (16,)
    frontends: Tuple[bool, ...] = (False,)
    btb_l1_entries: Tuple[int, ...] = (64,)
    btb_l2_entries: Tuple[int, ...] = (2048,)
    btb_l2_assocs: Tuple[int, ...] = (4,)
    ftq_depths: Tuple[int, ...] = (8,)
    fdip: Tuple[bool, ...] = (False,)
    backends: Tuple[str, ...] = ("inorder",)
    issue_widths: Tuple[int, ...] = (2,)
    rob_sizes: Tuple[int, ...] = (32,)
    iq_sizes: Tuple[int, ...] = (16,)
    phys_regs: Tuple[int, ...] = (64,)

    def __post_init__(self) -> None:
        for f in fields(self):
            object.__setattr__(self, f.name, _tuple(getattr(self, f.name)))
        for upd in self.bdt_updates:
            if upd not in BDT_UPDATES:
                raise ValueError("unknown bdt_update %r" % (upd,))
        for be in self.backends:
            if be not in BACKENDS:
                raise ValueError("unknown backend %r" % (be,))

    # ------------------------------------------------------------------
    def points(self) -> List[DesignPoint]:
        """Every distinct point, in deterministic order.

        Non-ASBR points collapse the ASBR dimensions and non-frontend
        points collapse the frontend dimensions (one point per
        remaining combination), so the grid never multiplies
        meaningless variants.
        """
        out: List[DesignPoint] = []
        seen = set()
        defaults = DesignPoint()
        for pred in self.predictors:
            for with_asbr in self.asbr:
                caps = self.bit_capacities if with_asbr else (None,)
                upds = self.bdt_updates if with_asbr else (None,)
                ffs = self.min_fold_fractions if with_asbr else (None,)
                mcs = self.min_counts if with_asbr else (None,)
                for cap in caps:
                    for upd in upds:
                        for ff in ffs:
                            for mc in mcs:
                                for fe in self._frontend_variants():
                                    for be in self._backend_variants():
                                        kw = dict(fe)
                                        kw.update(be)
                                        if with_asbr:
                                            p = DesignPoint(pred, True,
                                                            cap, upd, ff,
                                                            mc, **kw)
                                        else:
                                            p = DesignPoint(
                                                pred, False,
                                                defaults.bit_capacity,
                                                defaults.bdt_update,
                                                defaults.min_fold_fraction,
                                                defaults.min_count,
                                                **kw)
                                        if p not in seen:
                                            seen.add(p)
                                            out.append(p)
        return out

    def _frontend_variants(self) -> List[dict]:
        """Keyword dicts for the frontend sub-grid (collapsed when the
        front end is absent)."""
        out: List[dict] = []
        for frontend in self.frontends:
            if not frontend:
                out.append({"frontend": False})
                continue
            for l1 in self.btb_l1_entries:
                for l2 in self.btb_l2_entries:
                    for assoc in self.btb_l2_assocs:
                        for depth in self.ftq_depths:
                            for fdip in self.fdip:
                                out.append({"frontend": True,
                                            "btb_l1_entries": l1,
                                            "btb_l2_entries": l2,
                                            "btb_l2_assoc": assoc,
                                            "ftq_depth": depth,
                                            "fdip": fdip})
        return out

    def _backend_variants(self) -> List[dict]:
        """Keyword dicts for the backend sub-grid (the OoO machine
        knobs collapse when the backend is in-order)."""
        out: List[dict] = []
        for backend in self.backends:
            if backend != "ooo":
                out.append({"backend": backend})
                continue
            for w in self.issue_widths:
                for rob in self.rob_sizes:
                    for iq in self.iq_sizes:
                        for preg in self.phys_regs:
                            out.append({"backend": "ooo",
                                        "issue_width": w,
                                        "rob_size": rob,
                                        "iq_size": iq,
                                        "phys_regs": preg})
        return out

    @property
    def size(self) -> int:
        return len(self.points())

    def sample(self, k: int, seed: int) -> List[DesignPoint]:
        """``k`` distinct points, reproducible from ``seed``."""
        pts = self.points()
        if k >= len(pts):
            return pts
        return random.Random(seed).sample(pts, k)

    def to_dict(self) -> dict:
        return {f.name: list(getattr(self, f.name))
                for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "ConfigSpace":
        # frontend dimensions default when absent (pre-frontend files)
        return cls(**{f.name: tuple(d[f.name]) if f.name in d
                      else f.default
                      for f in fields(cls)})

    def digest(self) -> str:
        """Content hash pinning a journal to this exact space."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# named presets
# ----------------------------------------------------------------------
def paper_space() -> ConfigSpace:
    """The paper's threshold-reduction story as a space (fig. 9-11):
    the ASBR core with its quarter-size auxiliary bimodal at every
    forwarding path (thresholds 4/3/2), against the reference
    predictors it displaces."""
    return ConfigSpace(
        predictors=("not-taken", "bimodal-512-512", "bimodal-2048"),
        asbr=(False, True),
        bit_capacities=(16,),
        bdt_updates=BDT_UPDATES,
    )


def default_space() -> ConfigSpace:
    """A broader exploration grid: predictor families and sizes ×
    BIT capacities × forwarding paths × selection strictness."""
    return ConfigSpace(
        predictors=("not-taken", "bimodal-512-512", "bimodal-2048",
                    "gshare-2048-8"),
        asbr=(False, True),
        bit_capacities=(4, 8, 16),
        bdt_updates=BDT_UPDATES,
        min_fold_fractions=(0.3, 0.5),
    )


SPACES = {"paper": paper_space, "default": default_space}


def get_space(name_or_path: str) -> ConfigSpace:
    """Resolve a preset name or a JSON file to a :class:`ConfigSpace`."""
    if name_or_path in SPACES:
        return SPACES[name_or_path]()
    try:
        with open(name_or_path) as f:
            return ConfigSpace.from_dict(json.load(f))
    except FileNotFoundError:
        raise ValueError("unknown space %r (presets: %s; or a JSON file)"
                         % (name_or_path, ", ".join(sorted(SPACES))))
