"""Frontier rendering and export: table, ASCII scatter, JSON, CSV.

The human view follows the house rendering style (the telemetry
reports' aligned tables and the timeline's plain-ASCII axes): a ranked
table of every evaluated point with frontier members starred, and a
2-D scatter of one objective pair where ``#`` marks a Pareto-optimal
configuration and ``·`` a dominated one.  Machine views (``--json`` /
``--csv``) carry the full objective vectors for downstream plotting.
"""

from __future__ import annotations

import io
import json
from typing import List, Sequence

from repro.dse.engine import EvalResult
from repro.dse.objectives import DEFAULT_OBJECTIVES, SENSES
from repro.dse.pareto import pareto_front

_OBJ_FMT = {
    "cycles": "{:,}".format,
    "cpi": "%.3f".__mod__,
    "speedup": "%.3f".__mod__,
    "fold_coverage": lambda v: "%.1f%%" % (100 * v),
    "table_bits": "{:,}".format,
    "energy": "%.0f".__mod__,
}


def frontier_of(results: Sequence[EvalResult],
                objectives: Sequence[str] = DEFAULT_OBJECTIVES
                ) -> List[EvalResult]:
    """The non-dominated subset under the chosen objectives."""
    return pareto_front(list(results), objectives,
                        key=lambda r: r.objectives)


def render_results_table(results: Sequence[EvalResult],
                         objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                         title: str = "") -> str:
    """All points, frontier-first, frontier members starred."""
    front = set(id(r) for r in frontier_of(results, objectives))
    primary = objectives[0]
    ordered = sorted(
        results,
        key=lambda r: ((id(r) not in front),
                       -getattr(r.objectives, primary)
                       if SENSES[primary] == "max"
                       else getattr(r.objectives, primary)))
    headers = ["", "configuration"] + list(objectives)
    rows = []
    for r in ordered:
        cells = ["*" if id(r) in front else "", r.point.label()]
        for name in objectives:
            cells.append(_OBJ_FMT[name](getattr(r.objectives, name)))
        rows.append(cells)
    widths = [len(h) for h in headers]
    for row in rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines = [title] if title else []
    lines.append(fmt % tuple(headers))
    lines.append(fmt % tuple("-" * w for w in widths))
    for row in rows:
        lines.append((fmt % tuple(row)).rstrip())
    lines.append("* = Pareto-optimal under (%s)" % ", ".join(objectives))
    return "\n".join(lines)


def render_frontier_plot(results: Sequence[EvalResult],
                         x: str = "table_bits", y: str = "speedup",
                         objectives: Sequence[str] = DEFAULT_OBJECTIVES,
                         width: int = 56, height: int = 16) -> str:
    """ASCII scatter of one objective pair.

    ``#`` = on the (full multi-objective) frontier, ``·`` = dominated.
    Points sharing a cell collapse; frontier marks win the cell.
    """
    if not results:
        return "(no evaluated points)"
    front = set(id(r) for r in frontier_of(results, objectives))
    xs = [getattr(r.objectives, x) for r in results]
    ys = [getattr(r.objectives, y) for r in results]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for r, vx, vy in zip(results, xs, ys):
        col = int((vx - x0) / xspan * (width - 1))
        row = (height - 1) - int((vy - y0) / yspan * (height - 1))
        mark = "#" if id(r) in front else "·"
        if grid[row][col] != "#":
            grid[row][col] = mark
    ylab0 = _OBJ_FMT[y](y0)
    ylab1 = _OBJ_FMT[y](y1)
    margin = max(len(ylab0), len(ylab1))
    lines = ["%s vs %s   (# = frontier, · = dominated)" % (y, x)]
    for i, cells in enumerate(grid):
        if i == 0:
            label = ylab1
        elif i == height - 1:
            label = ylab0
        else:
            label = ""
        lines.append("%*s |%s" % (margin, label, "".join(cells).rstrip()))
    lines.append("%*s +%s" % (margin, "", "-" * width))
    xlab0, xlab1 = _OBJ_FMT[x](x0), _OBJ_FMT[x](x1)
    pad = width - len(xlab0) - len(xlab1)
    lines.append("%*s  %s%s%s" % (margin, "", xlab0,
                                  " " * max(pad, 1), xlab1))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# machine export
# ----------------------------------------------------------------------
def _row_dict(r: EvalResult, on_frontier: bool) -> dict:
    return {
        "point": r.point.to_dict(),
        "label": r.point.label(),
        "benchmark": r.benchmark,
        "n_samples": r.n_samples,
        "seed": r.seed,
        "objectives": r.objectives.to_dict(),
        "on_frontier": on_frontier,
    }


def export_json(results: Sequence[EvalResult],
                objectives: Sequence[str] = DEFAULT_OBJECTIVES) -> str:
    front = set(id(r) for r in frontier_of(results, objectives))
    return json.dumps({
        "objectives": list(objectives),
        "points": [_row_dict(r, id(r) in front) for r in results],
    }, indent=1, sort_keys=True)


def export_csv(results: Sequence[EvalResult],
               objectives: Sequence[str] = DEFAULT_OBJECTIVES) -> str:
    import csv

    front = set(id(r) for r in frontier_of(results, objectives))
    buf = io.StringIO()
    fields = ["label", "benchmark", "n_samples", "seed", "predictor",
              "with_asbr", "bit_capacity", "bdt_update",
              "min_fold_fraction", "min_count",
              "cycles", "cpi", "speedup", "fold_coverage",
              "table_bits", "energy", "on_frontier"]
    w = csv.writer(buf, lineterminator="\n")
    w.writerow(fields)
    for r in results:
        p, o = r.point, r.objectives
        w.writerow([p.label(), r.benchmark, r.n_samples, r.seed,
                    p.predictor_spec, int(p.with_asbr), p.bit_capacity,
                    p.bdt_update, p.min_fold_fraction, p.min_count,
                    o.cycles, "%.6f" % o.cpi, "%.6f" % o.speedup,
                    "%.6f" % o.fold_coverage, o.table_bits,
                    "%.3f" % o.energy, int(id(r) in front)])
    return buf.getvalue()
