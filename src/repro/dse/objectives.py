"""Objective extraction: one evaluated run → a comparable vector.

Every evaluated design point is reduced to an :class:`ObjectiveVector`:

* ``cycles`` / ``cpi`` — straight off :class:`~repro.sim.pipeline.
  PipelineStats`;
* ``speedup`` — baseline cycles / point cycles, against the paper's
  reference core (``bimodal-2048``, no ASBR) on the same workload and
  input;
* ``fold_coverage`` — committed folds / (committed folds + unfolded
  branch executions), from the run's telemetry tables
  (:class:`~repro.telemetry.MetricsRegistry`) — the fraction of dynamic
  conditional branches ASBR removed from the pipeline;
* ``table_bits`` — hardware cost of the prediction structures this
  point instantiates: predictor SRAM + BIT + BDT (paper Section 7's
  area argument);
* ``energy`` — the activity-based model of :mod:`repro.power`,
  reconstructed from stats (:func:`~repro.power.
  estimate_energy_from_stats`) so cached results need no re-simulation.

``SENSES`` declares which direction is better for each objective, so
the Pareto code (:mod:`repro.dse.pareto`) never hard-codes it.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.asbr.bit import BITS_PER_ENTRY
from repro.asbr.bdt import BranchDirectionTable
from repro.dse.space import DesignPoint
from repro.predictors.btb import TARGET_BITS, entry_state_bits

#: FTQ entry cost: fetch pc + predicted next pc + 2 flag bits
#: (mirrors DecoupledFrontend.state_bits).
FTQ_ENTRY_BITS = 30 + 30 + 2
from repro.power import estimate_energy_from_stats
from repro.predictors import make_predictor
from repro.sim.pipeline import PipelineStats

#: objective name -> "min" | "max" (direction of improvement)
SENSES: Dict[str, str] = {
    "cycles": "min",
    "cpi": "min",
    "speedup": "max",
    "fold_coverage": "max",
    "table_bits": "min",
    "energy": "min",
}

#: the frontier the paper's story is about: performance vs the two
#: costs a designer pays for it.
DEFAULT_OBJECTIVES: Tuple[str, ...] = ("speedup", "table_bits", "energy")


@dataclass(frozen=True)
class ObjectiveVector:
    """All extracted objectives for one evaluated point."""

    cycles: int
    cpi: float
    speedup: float
    fold_coverage: float
    table_bits: int
    energy: float

    def values(self, names) -> tuple:
        """The requested objectives, in order (for dominance checks)."""
        return tuple(getattr(self, n) for n in names)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: dict) -> "ObjectiveVector":
        return cls(**{f.name: d[f.name] for f in fields(cls)})


def validate_objectives(names) -> Tuple[str, ...]:
    """Check every name against :data:`SENSES`; return as a tuple."""
    names = tuple(names)
    for n in names:
        if n not in SENSES:
            raise ValueError("unknown objective %r (have: %s)"
                             % (n, ", ".join(sorted(SENSES))))
    if not names:
        raise ValueError("need at least one objective")
    return names


# ----------------------------------------------------------------------
# per-component extractors
# ----------------------------------------------------------------------
_pred_bits_memo: Dict[str, int] = {}


def table_cost_bits(point: DesignPoint) -> int:
    """Prediction-structure SRAM this point instantiates, in bits."""
    spec = point.predictor_spec
    if spec not in _pred_bits_memo:
        _pred_bits_memo[spec] = make_predictor(spec).state_bits
    bits = _pred_bits_memo[spec]
    if point.with_asbr:
        bits += point.bit_capacity * BITS_PER_ENTRY
        bits += BranchDirectionTable().state_bits
    bits += frontend_cost_bits(point)
    bits += ooo_cost_bits(point)
    return bits


def frontend_cost_bits(point: DesignPoint) -> int:
    """Decoupled-frontend SRAM (BTB levels + FTQ), zero when absent.

    Computed from the shared entry geometry rather than by
    instantiating the structures, so sweeps stay cheap; the formula is
    locked against ``DecoupledFrontend.state_bits`` by the DSE tests.
    """
    if not point.frontend:
        return 0
    entry = entry_state_bits(TARGET_BITS)
    return ((point.btb_l1_entries + point.btb_l2_entries) * entry
            + point.ftq_depth * FTQ_ENTRY_BITS)


def ooo_cost_bits(point: DesignPoint) -> int:
    """Out-of-order machine SRAM/CAM state, zero for in-order points.

    R10000-style accounting: the rename registers beyond the 32
    architectural ones, the map table and free list (physical tags),
    the active list (pc + new/old tag + flag bits per entry) and the
    issue queue (pc + dest/src tags + decoded-control bits per entry).
    A first-order area proxy — enough to price ROB/IQ/PRF depth against
    the fetch-side tables on one axis, not a layout model.
    """
    if point.backend != "ooo":
        return 0
    tag = (point.phys_regs - 1).bit_length()
    prf = (point.phys_regs - 32) * 32
    map_table = 32 * tag
    free_list = point.phys_regs * tag
    rob = point.rob_size * (30 + 2 * tag + 8)
    iq = point.iq_size * (30 + 3 * tag + 16)
    return prf + map_table + free_list + rob + iq


def fold_coverage(metrics: Optional[dict]) -> float:
    """Dynamic-branch coverage from serialised telemetry tables."""
    if not metrics:
        return 0.0
    from repro.telemetry import MetricsRegistry
    registry = MetricsRegistry.from_dict(metrics)
    folds = sum(b.fold_hits for b in registry.branches.values())
    execs = sum(b.executions for b in registry.branches.values())
    total = folds + execs
    return folds / total if total else 0.0


def point_energy(point: DesignPoint, stats: PipelineStats) -> float:
    """Activity-based relative energy of this run (stats-only model)."""
    bit_bits = point.bit_capacity * BITS_PER_ENTRY if point.with_asbr \
        else 0
    bdt_bits = BranchDirectionTable().state_bits if point.with_asbr \
        else 0
    # frontend and OoO SRAM ride in the predictor term: same
    # leakage/access cost class (machine-structure bits cycled every
    # fetch/issue)
    pred_bits = (table_cost_bits(
        DesignPoint(point.predictor_spec, with_asbr=False))
        + frontend_cost_bits(point) + ooo_cost_bits(point))
    report = estimate_energy_from_stats(
        stats, predictor_state_bits=pred_bits,
        bit_state_bits=bit_bits, bdt_state_bits=bdt_bits)
    return report.total


def extract_objectives(point: DesignPoint, stats: PipelineStats,
                       metrics: Optional[dict],
                       baseline_stats: PipelineStats) -> ObjectiveVector:
    """Reduce one evaluated run to its objective vector."""
    speedup = baseline_stats.cycles / stats.cycles if stats.cycles \
        else 0.0
    return ObjectiveVector(
        cycles=stats.cycles,
        cpi=stats.cpi,
        speedup=speedup,
        fold_coverage=fold_coverage(metrics),
        table_bits=table_cost_bits(point),
        energy=point_energy(point, stats),
    )
