"""Search drivers: how a space is walked.

Every driver has the same contract — ``run(evaluator, space)`` returns
the full-input :class:`~repro.dse.engine.EvalResult` list it produced —
and all of them are resumable for free, because every evaluation goes
through the evaluator's journal.

* :class:`GridSearch` — exhaustive: every point of the space at the
  full input size.  The right tool at paper scale (tens of points).
* :class:`RandomSearch` — ``n_points`` drawn without replacement from
  the grid, reproducible from one seed (which the journal records, so
  a resumed run draws the identical subset).
* :class:`SuccessiveHalving` — the budgeted driver: evaluate everything
  on a cheap short input, rank by the primary objective, promote the
  best ``1/eta`` to a ``growth``-times longer input, repeat until the
  survivors run at full size.  Short-input rungs are journaled at their
  own ``n_samples``, so they never pollute the full-input frontier but
  still resume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.dse.engine import EvalResult, Evaluator
from repro.dse.objectives import SENSES
from repro.dse.space import ConfigSpace, DesignPoint


@dataclass(frozen=True)
class GridSearch:
    """Exhaustive evaluation of every point at full input size."""

    name = "grid"

    def run(self, evaluator: Evaluator,
            space: ConfigSpace) -> List[EvalResult]:
        return evaluator.evaluate(space.points())


@dataclass(frozen=True)
class RandomSearch:
    """Seeded sample of the grid, evaluated at full input size."""

    n_points: int = 8
    seed: int = 0

    name = "random"

    def __post_init__(self) -> None:
        if self.n_points <= 0:
            raise ValueError("n_points must be positive")

    def run(self, evaluator: Evaluator,
            space: ConfigSpace) -> List[EvalResult]:
        return evaluator.evaluate(space.sample(self.n_points, self.seed))


@dataclass(frozen=True)
class SuccessiveHalving:
    """Promote short-input survivors toward the full input size.

    ``rung0_samples`` is the cheapest rung; each promotion keeps the
    top ``ceil(len/eta)`` points by ``objective`` and multiplies the
    input length by ``growth`` (capped at the evaluator's full size).
    The final rung always runs at full size, so its results are
    directly comparable with the other drivers'.
    """

    eta: int = 2
    rung0_samples: int = 128
    growth: int = 4
    objective: str = "speedup"

    name = "halving"

    def __post_init__(self) -> None:
        if self.eta < 2:
            raise ValueError("eta must be >= 2")
        if self.rung0_samples <= 0 or self.growth < 2:
            raise ValueError("bad rung geometry")
        if self.objective not in SENSES:
            raise ValueError("unknown objective %r" % (self.objective,))

    def _rank_key(self, result: EvalResult):
        value = getattr(result.objectives, self.objective)
        return -value if SENSES[self.objective] == "max" else value

    def rung_sizes(self, full: int) -> List[int]:
        """Every input size this search will visit, cheapest first."""
        sizes = [min(self.rung0_samples, full)]
        while sizes[-1] < full:
            sizes.append(min(full, sizes[-1] * self.growth))
        return sizes

    def run(self, evaluator: Evaluator,
            space: ConfigSpace) -> List[EvalResult]:
        survivors: List[DesignPoint] = space.points()
        full = evaluator.n_samples
        sizes = self.rung_sizes(full)
        # all rung inputs golden-verify in one lockstep batch pass
        # before any cycle-accurate work starts (and the functional
        # retire count per rung is memoised for reporting)
        prefetch = getattr(evaluator, "prefetch_functional", None)
        if prefetch is not None:
            prefetch(sizes)
        for n in sizes:
            results = evaluator.evaluate(survivors, n_samples=n)
            if n >= full:
                return results
            ranked = sorted(results, key=self._rank_key)
            keep = max(1, math.ceil(len(ranked) / self.eta))
            survivors = [r.point for r in ranked[:keep]]
        return results


def make_search(name: str, n_points: int = 8, seed: int = 0,
                rung0_samples: Optional[int] = None):
    """CLI factory: ``grid`` | ``random`` | ``halving``."""
    if name == "grid":
        return GridSearch()
    if name == "random":
        return RandomSearch(n_points=n_points, seed=seed)
    if name == "halving":
        kw = {}
        if rung0_samples is not None:
            kw["rung0_samples"] = rung0_samples
        return SuccessiveHalving(**kw)
    raise ValueError("unknown search driver %r "
                     "(grid, random, halving)" % (name,))
