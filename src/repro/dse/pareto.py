"""Exact multi-objective Pareto-frontier computation.

Plain pairwise dominance over mixed min/max objectives.  A point is on
the frontier iff no other point *strictly* dominates it — at least as
good everywhere and better somewhere.  Ties are kept: two points with
identical objective vectors never dominate each other, so both survive
(a designer wants to see every configuration that achieves a frontier
trade-off, not an arbitrary representative).

O(n²) pairwise checks — exact, order-independent, and fast at design-
space sizes (thousands of points); the evaluation of a point costs
seconds of simulation, so the frontier computation is never the
bottleneck.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dse.objectives import SENSES


def _oriented(vector: Sequence[float], senses: Sequence[str]) -> tuple:
    """Flip max objectives so dominance is uniformly 'smaller is
    better'."""
    return tuple(-v if s == "max" else v
                 for v, s in zip(vector, senses))


def dominates(a: Sequence[float], b: Sequence[float],
              senses: Sequence[str]) -> bool:
    """True iff ``a`` strictly dominates ``b`` under ``senses``."""
    if len(a) != len(b) or len(a) != len(senses):
        raise ValueError("vector/sense length mismatch")
    oa, ob = _oriented(a, senses), _oriented(b, senses)
    return all(x <= y for x, y in zip(oa, ob)) and oa != ob


def pareto_indices(vectors: Sequence[Sequence[float]],
                   senses: Sequence[str]) -> List[int]:
    """Indices of the non-dominated vectors, in input order."""
    for v in vectors:
        if len(v) != len(senses):
            raise ValueError("vector/sense length mismatch")
    oriented = [_oriented(v, senses) for v in vectors]
    out = []
    for i, vi in enumerate(oriented):
        dominated = False
        for j, vj in enumerate(oriented):
            if j == i:
                continue
            if all(x <= y for x, y in zip(vj, vi)) and vj != vi:
                dominated = True
                break
        if not dominated:
            out.append(i)
    return out


def pareto_front(items, objectives: Sequence[str],
                 key=lambda item: item) -> list:
    """The non-dominated subset of ``items``.

    ``objectives`` are names from :data:`repro.dse.objectives.SENSES`;
    ``key`` maps an item to something with a ``values(names)`` method
    (an :class:`~repro.dse.objectives.ObjectiveVector`).
    """
    senses = [SENSES[n] for n in objectives]
    vectors = [key(item).values(objectives) for item in items]
    keep = set(pareto_indices(vectors, senses))
    return [item for i, item in enumerate(items) if i in keep]
