"""The DSE evaluator: journal-first, cache-backed, pool-parallel.

:class:`Evaluator` is the bridge between a search driver and the
simulator.  ``evaluate(points)`` resolves each point in three layers:

1. **journal** — a recorded evaluation is returned without touching
   anything (this is what makes ``--resume`` free);
2. **runner cache** — misses become :class:`~repro.runner.RunSpec`\\ s
   and go through :func:`repro.runner.run_sweep`, which consults the
   content-addressed on-disk cache;
3. **simulation** — remaining distinct specs run on the worker pool,
   with telemetry metrics collected for the fold-coverage objective.

Every fresh result is reduced to an
:class:`~repro.dse.objectives.ObjectiveVector` and journaled before
``evaluate`` returns, so a kill at any instant loses at most the
in-flight batch.  Speedup is always measured against the paper's
reference core (``bimodal-2048``, no ASBR) on the *same* workload and
input size — the baseline is itself a design point, evaluated and
journaled through the same path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dse.journal import Journal, eval_key
from repro.dse.objectives import ObjectiveVector, extract_objectives
from repro.dse.space import DesignPoint
from repro.runner import FailedResult, ResultCache, run_sweep
from repro.sim.pipeline import PipelineStats

#: the paper's reference configuration (fig. 6/11 baseline).
BASELINE_POINT = DesignPoint(predictor_spec="bimodal-2048",
                             with_asbr=False)


@dataclass
class EvalResult:
    """One evaluated point with its provenance."""

    point: DesignPoint
    benchmark: str
    n_samples: int
    seed: int
    objectives: ObjectiveVector
    from_journal: bool       # True: replayed, no simulator work

    @property
    def key(self) -> str:
        return eval_key(self.point, self.benchmark, self.n_samples,
                        self.seed)


def result_from_record(rec: dict) -> EvalResult:
    """Rehydrate a journal ``eval`` record."""
    return EvalResult(
        point=DesignPoint.from_dict(rec["point"]),
        benchmark=rec["benchmark"],
        n_samples=rec["n_samples"],
        seed=rec["seed"],
        objectives=ObjectiveVector.from_dict(rec["objectives"]),
        from_journal=True,
    )


class Evaluator:
    """Evaluates design points on one workload and input seed."""

    def __init__(self, benchmark: str, n_samples: int, seed: int,
                 workers: int = 0,
                 cache: Optional[ResultCache] = None,
                 journal: Optional[Journal] = None,
                 task_timeout: Optional[float] = None,
                 retries: int = 0,
                 tolerant: bool = False,
                 engine: str = "interp") -> None:
        self.benchmark = benchmark
        self.n_samples = n_samples
        self.seed = seed
        self.workers = workers
        #: execution engine for every simulated spec; never part of a
        #: journal or cache key (engines are bit-identical)
        self.engine = engine
        self.cache = cache
        self.journal = journal
        #: hardened-runner knobs (see :func:`repro.runner.map_specs`).
        #: ``tolerant`` quarantines a point whose run fails — it is
        #: journaled as ``failed`` (retried on resume) and dropped from
        #: the result list instead of aborting the exploration.
        self.task_timeout = task_timeout
        self.retries = retries
        self.tolerant = tolerant
        self.simulated = 0       # evaluations that reached run_sweep
        self.journal_hits = 0    # evaluations answered by the journal
        self.failed = 0          # evaluations quarantined (tolerant)
        self._baselines: Dict[int, PipelineStats] = {}  # n -> stats
        self._func_instructions: Dict[int, int] = {}    # n -> retired

    # ------------------------------------------------------------------
    def _journal_get(self, point: DesignPoint,
                     n: int) -> Optional[EvalResult]:
        if self.journal is None:
            return None
        rec = self.journal.get(eval_key(point, self.benchmark, n,
                                        self.seed))
        return result_from_record(rec) if rec is not None else None

    def baseline_stats(self, n_samples: Optional[int] = None
                       ) -> PipelineStats:
        """Reference-core stats at one input size (memoised)."""
        n = self.n_samples if n_samples is None else n_samples
        if n not in self._baselines:
            spec = BASELINE_POINT.to_spec(self.benchmark, n, self.seed,
                                          engine=self.engine)
            (stats, metrics), = run_sweep([spec], workers=1,
                                          cache=self.cache,
                                          collect_metrics=True)
            self._baselines[n] = stats
            if self.journal is not None and not self._journal_get(
                    BASELINE_POINT, n):
                vec = extract_objectives(BASELINE_POINT, stats, metrics,
                                         baseline_stats=stats)
                self.journal.record_eval(BASELINE_POINT, self.benchmark,
                                         n, self.seed, vec)
        return self._baselines[n]

    # ------------------------------------------------------------------
    def prefetch_functional(self, sizes: Sequence[int]) -> Dict[int, int]:
        """Golden-verify every rung input in one vectorized pass.

        A budgeted search (:class:`~repro.dse.search.SuccessiveHalving`)
        knows all its rung input sizes up front, and they all run the
        same program — exactly the shape the lockstep batch engine
        collapses: one :func:`repro.sim.batch.run_batch` call, one lane
        per size.  Each lane's output is checked against the golden
        model, so a broken workload/input combination fails here, in
        milliseconds, instead of deep inside the first cycle-accurate
        rung.  Returns (and memoises) the functional retire count per
        size — the architectural work each rung's speedups are judged
        over.  With ``tolerant`` set, a failing size is skipped (the
        pipeline path will quarantine it properly) instead of raising.
        """
        from repro.runner.batch import FuncSpec, execute_func_specs

        todo = [n for n in dict.fromkeys(sizes)
                if n not in self._func_instructions]
        if todo:
            res = execute_func_specs(
                [FuncSpec(self.benchmark, n, self.seed) for n in todo])
            for n, r in zip(todo, res):
                if isinstance(r, FailedResult):
                    if self.tolerant:
                        continue
                    raise RuntimeError(
                        "functional prefetch failed for %s at "
                        "n_samples=%d: %s" % (self.benchmark, n, r.error))
                self._func_instructions[n] = r.instructions
        return dict(self._func_instructions)

    # ------------------------------------------------------------------
    def evaluate(self, points: Sequence[DesignPoint],
                 n_samples: Optional[int] = None) -> List[EvalResult]:
        """Objective vectors for every point, in input order.

        Journaled evaluations are replayed; the rest are simulated in
        one deduplicated, cache-aware, possibly-parallel sweep and
        journaled before returning.
        """
        n = self.n_samples if n_samples is None else n_samples
        resolved: Dict[DesignPoint, EvalResult] = {}
        pending: List[DesignPoint] = []
        for p in points:
            if p in resolved or p in pending:
                continue
            hit = self._journal_get(p, n)
            if hit is not None:
                resolved[p] = hit
                self.journal_hits += 1
            else:
                pending.append(p)

        if pending:
            baseline = self.baseline_stats(n)   # journals the baseline
            if BASELINE_POINT in pending:
                # just evaluated above — replay instead of re-sweeping
                pending.remove(BASELINE_POINT)
                resolved[BASELINE_POINT] = self._journal_get(
                    BASELINE_POINT, n) or EvalResult(
                        BASELINE_POINT, self.benchmark, n, self.seed,
                        extract_objectives(BASELINE_POINT, baseline,
                                           None, baseline),
                        from_journal=False)
                self.simulated += 1
        if pending:
            specs = [p.to_spec(self.benchmark, n, self.seed,
                               engine=self.engine)
                     for p in pending]
            results = run_sweep(specs, workers=self.workers,
                                cache=self.cache, collect_metrics=True,
                                task_timeout=self.task_timeout,
                                retries=self.retries,
                                on_error="return" if self.tolerant
                                else "raise")
            self.simulated += len(pending)
            for p, result in zip(pending, results):
                if isinstance(result, FailedResult):
                    # quarantined: journaled as failed (kept pending
                    # for a future resume), dropped from the results
                    self.failed += 1
                    if self.journal is not None:
                        self.journal.record_failed(
                            p, self.benchmark, n, self.seed,
                            result.error, kind=result.kind)
                    continue
                stats, metrics = result
                vec = extract_objectives(p, stats, metrics, baseline)
                if self.journal is not None:
                    self.journal.record_eval(p, self.benchmark, n,
                                             self.seed, vec)
                resolved[p] = EvalResult(p, self.benchmark, n,
                                         self.seed, vec,
                                         from_journal=False)

        return [resolved[p] for p in dict.fromkeys(points)
                if p in resolved]
