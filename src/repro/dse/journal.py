"""Append-only JSONL journal of evaluated design points.

One line per record.  The first line is a ``meta`` record pinning the
exploration's identity — space digest, benchmark, input ``(n_samples,
seed)`` — and every further line is an ``eval`` record: the design
point, the input size it was evaluated at (successive halving runs
points at several sizes), and its extracted objectives.

Crash safety is the whole point: every record is written, flushed and
fsynced before the evaluation is considered done, and a truncated final
line (killed process, full disk) is silently dropped on load.  A
resumed exploration therefore re-evaluates at most the one point whose
record was cut off — everything journaled is skipped without touching
the simulator, even across processes.  The runner's content-addressed
cache (:mod:`repro.runner.cache`) sits underneath for the raw run
results; the journal adds the *derived* objectives and the search
position, which the cache alone cannot restore.

The file-level mechanics (fsync'd append, torn-tail drop on load,
tail repair before append) live in the shared :mod:`repro.wal`
helpers, which the serve daemon's durable job store reuses — one
crash-safety argument, tested once, shared by both subsystems.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.dse.objectives import ObjectiveVector
from repro.dse.space import DesignPoint
from repro.wal import JsonlWal, load_jsonl

JOURNAL_VERSION = 1


class JournalMismatch(Exception):
    """The on-disk journal was produced by a different exploration."""


def eval_key(point: DesignPoint, benchmark: str, n_samples: int,
             seed: int) -> str:
    """Identity of one evaluation (point × workload × input)."""
    return "%s @%s n=%d s=%d" % (point.key(), benchmark, n_samples, seed)


class Journal:
    """Append-only journal with resume-by-key lookups."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.meta: Optional[dict] = None
        self.records: Dict[str, dict] = {}   # eval_key -> eval record
        self.failures: Dict[str, dict] = {}  # eval_key -> failed record
        self.dropped = 0                     # corrupt/truncated lines
        self._wal: Optional[JsonlWal] = None

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def load(self) -> "Journal":
        """Read whatever is on disk; tolerate a truncated tail."""
        self.meta = None
        self.records = {}
        self.failures = {}
        records, self.dropped = load_jsonl(self.path)
        for rec in records:
            kind = rec.get("kind")
            if kind is None:
                self.dropped += 1
                continue
            if kind == "meta" and self.meta is None:
                self.meta = rec
            elif kind == "eval":
                self.records[rec["key"]] = rec
                # a successful re-evaluation supersedes an old failure
                self.failures.pop(rec["key"], None)
            elif kind == "failed":
                self.failures[rec["key"]] = rec
            else:
                self.dropped += 1
        return self

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def open(self, meta: dict) -> "Journal":
        """Load any existing journal, verify it matches ``meta``, and
        open for appending (writing the meta line if new).

        ``meta`` should carry the exploration identity (``space``
        digest, ``benchmark``, ``n_samples``, ``seed``); a mismatch on
        any shared key raises :class:`JournalMismatch` rather than
        silently mixing two explorations in one frontier.
        """
        self.load()
        if self.meta is not None:
            for k, v in meta.items():
                old = self.meta.get(k)
                if old != v:
                    raise JournalMismatch(
                        "journal %s was recorded with %s=%r, "
                        "this run wants %r — use a fresh journal"
                        % (self.path, k, old, v))
        self._wal = JsonlWal(self.path).open()
        if self.meta is None:
            self.meta = dict(meta, kind="meta", version=JOURNAL_VERSION)
            self._write(self.meta)
        return self

    def _write(self, record: dict) -> None:
        if self._wal is None:
            raise RuntimeError("journal not open for writing")
        self._wal.append(record)

    def record_eval(self, point: DesignPoint, benchmark: str,
                    n_samples: int, seed: int,
                    objectives: ObjectiveVector) -> dict:
        """Durably record one completed evaluation."""
        key = eval_key(point, benchmark, n_samples, seed)
        rec = {
            "kind": "eval",
            "key": key,
            "point": point.to_dict(),
            "benchmark": benchmark,
            "n_samples": n_samples,
            "seed": seed,
            "objectives": objectives.to_dict(),
        }
        self._write(rec)
        self.records[key] = rec
        self.failures.pop(key, None)
        return rec

    def record_failed(self, point: DesignPoint, benchmark: str,
                      n_samples: int, seed: int, error: str,
                      kind: str = "error") -> dict:
        """Durably record that a point could not be evaluated.

        The point stays *pending* — ``has()`` ignores failures, so a
        resumed exploration retries it — but the failure itself is
        never lost: reports can show which points were quarantined and
        why, even after the process that hit them is gone.
        """
        key = eval_key(point, benchmark, n_samples, seed)
        rec = {
            "kind": "failed",
            "key": key,
            "point": point.to_dict(),
            "benchmark": benchmark,
            "n_samples": n_samples,
            "seed": seed,
            "error": error,
            "failure_kind": kind,
        }
        self._write(rec)
        self.failures[key] = rec
        return rec

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        return key in self.records

    def get(self, key: str) -> Optional[dict]:
        return self.records.get(key)

    def evals(self, n_samples: Optional[int] = None) -> Iterator[dict]:
        """Recorded evaluations, optionally only those at one input
        size (the frontier is computed over full-size runs only)."""
        for rec in self.records.values():
            if n_samples is None or rec["n_samples"] == n_samples:
                yield rec

    def __len__(self) -> int:
        return len(self.records)

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
