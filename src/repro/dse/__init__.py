"""Resumable design-space exploration over the ASBR mechanism.

The paper hand-picks one configuration per figure; this package turns
the mechanism's knobs — auxiliary predictor family/size, BIT capacity,
BDT forwarding path (the threshold), selection-policy strictness — into
a typed :class:`~repro.dse.space.ConfigSpace` and characterises the
whole space automatically:

* :mod:`~repro.dse.space` — design points, grids and named presets;
* :mod:`~repro.dse.search` — exhaustive, seeded-random and
  successive-halving drivers;
* :mod:`~repro.dse.engine` — the evaluator: journal → runner cache →
  worker pool, objectives extracted from stats + telemetry;
* :mod:`~repro.dse.objectives` — speedup, fold coverage, table cost in
  bits, activity-based energy;
* :mod:`~repro.dse.pareto` — exact multi-objective frontiers;
* :mod:`~repro.dse.journal` — crash-safe JSONL record of every
  evaluation, making ``repro dse run --resume`` free across processes;
* :mod:`~repro.dse.report` — frontier tables, ASCII scatter plots and
  JSON/CSV export.

Entry points: ``repro dse run|frontier|report`` on the CLI and
:mod:`repro.experiments.dse_frontier` for the paper's
threshold-reduction story rendered as a frontier.
"""

from repro.dse.engine import BASELINE_POINT, EvalResult, Evaluator
from repro.dse.journal import Journal, JournalMismatch, eval_key
from repro.dse.objectives import (
    DEFAULT_OBJECTIVES,
    SENSES,
    ObjectiveVector,
    extract_objectives,
    fold_coverage,
    table_cost_bits,
    validate_objectives,
)
from repro.dse.pareto import dominates, pareto_front, pareto_indices
from repro.dse.report import (
    export_csv,
    export_json,
    frontier_of,
    render_frontier_plot,
    render_results_table,
)
from repro.dse.search import (
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
    make_search,
)
from repro.dse.space import (
    ConfigSpace,
    DesignPoint,
    default_space,
    get_space,
    paper_space,
)

__all__ = [
    "BASELINE_POINT",
    "ConfigSpace",
    "DEFAULT_OBJECTIVES",
    "DesignPoint",
    "EvalResult",
    "Evaluator",
    "GridSearch",
    "Journal",
    "JournalMismatch",
    "ObjectiveVector",
    "RandomSearch",
    "SENSES",
    "SuccessiveHalving",
    "default_space",
    "dominates",
    "eval_key",
    "export_csv",
    "export_json",
    "extract_objectives",
    "fold_coverage",
    "frontier_of",
    "get_space",
    "make_search",
    "pareto_front",
    "pareto_indices",
    "paper_space",
    "render_frontier_plot",
    "render_results_table",
    "table_cost_bits",
    "validate_objectives",
]
