"""Relative energy estimation for one pipeline run.

Dynamic energy: every activation of a structure costs an energy that
scales with the square root of its state (small-SRAM CACTI-like
scaling).  Static energy: leakage proportional to total state times
cycles.  Units are arbitrary but consistent, so ratios between
configurations are meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.asbr.folding import ASBRUnit
from repro.memory.cache import Cache
from repro.predictors.base import BranchPredictor
from repro.sim.pipeline import PipelineSimulator, PipelineStats


@dataclass(frozen=True)
class EnergyParams:
    """Model coefficients (relative units)."""

    pipeline_slot: float = 10.0      # one instruction through one stage
    stage_count: int = 5
    table_access_coeff: float = 0.02   # x sqrt(state_bits) per access
    cache_miss_energy: float = 200.0   # line fill from next level
    leakage_coeff: float = 2e-7        # x state_bits per cycle
    fold_energy: float = 1.0           # BIT hit + replacement mux


@dataclass
class EnergyReport:
    """Energy breakdown for one simulation."""

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def fraction(self, name: str) -> float:
        return self.components.get(name, 0.0) / self.total if self.total \
            else 0.0

    def render(self, title: str = "energy breakdown") -> str:
        lines = [title]
        for name in sorted(self.components,
                           key=lambda n: -self.components[n]):
            value = self.components[name]
            lines.append("  %-18s %12.1f  (%4.1f%%)"
                         % (name, value, 100 * value / self.total))
        lines.append("  %-18s %12.1f" % ("TOTAL", self.total))
        return "\n".join(lines)


def _access_energy(state_bits: int, params: EnergyParams) -> float:
    return params.table_access_coeff * math.sqrt(max(state_bits, 1))


def estimate_energy(sim: PipelineSimulator,
                    params: Optional[EnergyParams] = None) -> EnergyReport:
    """Energy report for a completed :class:`PipelineSimulator` run."""
    params = params if params is not None else EnergyParams()
    stats: PipelineStats = sim.stats
    predictor: BranchPredictor = sim.predictor
    icache: Cache = sim.icache
    dcache: Cache = sim.dcache
    asbr: Optional[ASBRUnit] = sim.asbr
    report = EnergyReport()
    comp = report.components

    # pipeline activity: every fetched instruction occupies slots;
    # committed ones walk all stages, squashed ones roughly half
    comp["pipeline"] = params.pipeline_slot * (
        stats.committed * params.stage_count
        + stats.squashed * params.stage_count * 0.5)

    # caches
    e_ic = _access_energy(icache.state_bits, params)
    e_dc = _access_energy(dcache.state_bits, params)
    comp["icache"] = (icache.stats.accesses * e_ic
                      + icache.stats.misses * params.cache_miss_energy)
    comp["dcache"] = (dcache.stats.accesses * e_dc
                      + (dcache.stats.misses + dcache.stats.writebacks)
                      * params.cache_miss_energy)

    # predictor: a lookup per fetched branch, an update per resolution
    e_pred = _access_energy(predictor.state_bits, params)
    comp["predictor"] = e_pred * (stats.predictor_lookups + stats.branches)

    # ASBR structures
    if asbr is not None:
        e_bit = _access_energy(asbr.bit.state_bits, params)
        e_bdt = _access_energy(asbr.bdt.state_bits, params)
        bit_lookups = (stats.predictor_lookups
                       + asbr.stats.folded + asbr.stats.invalid_fallbacks)
        bdt_updates = stats.committed        # one per produced register, ~
        comp["asbr"] = (e_bit * bit_lookups + e_bdt * bdt_updates
                        + params.fold_energy * asbr.stats.folded)

    # leakage over the whole run
    state = (icache.state_bits + dcache.state_bits + predictor.state_bits
             + (asbr.state_bits if asbr is not None else 0))
    comp["leakage"] = params.leakage_coeff * state * stats.cycles

    return report


def estimate_energy_from_stats(stats: PipelineStats,
                               predictor_state_bits: int,
                               bit_state_bits: int = 0,
                               bdt_state_bits: int = 0,
                               icache_config=None,
                               dcache_config=None,
                               params: Optional[EnergyParams] = None
                               ) -> EnergyReport:
    """Energy report reconstructed from :class:`PipelineStats` alone.

    :func:`estimate_energy` needs the live simulator objects; cached
    sweep results (:mod:`repro.runner`) only keep the stats, so the
    design-space explorer uses this estimator instead.  Same
    coefficients, with the counts the stats do not carry approximated:

    * cache *misses* are recovered from the recorded miss-stall cycles
      divided by the configured miss penalty;
    * I-cache accesses ≈ fetched instructions + committed folds (a fold
      fetches its replacement instruction);
    * D-cache accesses ≈ 0.3 × committed (the memory-reference fraction
      typical of these kernels).  Program and input are fixed across a
      design space, so this term is constant per benchmark and cannot
      reorder configurations.

    Structure sizes come in as bits because the structures themselves
    are not rebuilt: the predictor's from its spec, the BIT's from its
    capacity, the BDT's from the register count.
    """
    from repro.memory.cache import Cache, CacheConfig

    params = params if params is not None else EnergyParams()
    icc = icache_config if icache_config is not None else CacheConfig()
    dcc = dcache_config if dcache_config is not None else CacheConfig()
    ic_bits = Cache(icc).state_bits
    dc_bits = Cache(dcc).state_bits
    report = EnergyReport()
    comp = report.components

    comp["pipeline"] = params.pipeline_slot * (
        stats.committed * params.stage_count
        + stats.squashed * params.stage_count * 0.5)

    ic_misses = stats.icache_miss_stalls // max(icc.miss_penalty, 1)
    dc_misses = stats.dcache_miss_stalls // max(dcc.miss_penalty, 1)
    ic_accesses = stats.fetched + stats.folds_committed
    dc_accesses = int(0.3 * stats.committed)
    comp["icache"] = (ic_accesses * _access_energy(ic_bits, params)
                      + ic_misses * params.cache_miss_energy)
    comp["dcache"] = (dc_accesses * _access_energy(dc_bits, params)
                      + dc_misses * params.cache_miss_energy)

    comp["predictor"] = _access_energy(predictor_state_bits, params) \
        * (stats.predictor_lookups + stats.branches)

    asbr_bits = bit_state_bits + bdt_state_bits
    if asbr_bits:
        bit_lookups = stats.predictor_lookups + stats.folds_committed
        comp["asbr"] = (
            _access_energy(bit_state_bits, params) * bit_lookups
            + _access_energy(bdt_state_bits, params) * stats.committed
            + params.fold_energy * stats.folds_committed)

    state = ic_bits + dc_bits + predictor_state_bits + asbr_bits
    comp["leakage"] = params.leakage_coeff * state * stats.cycles
    return report


def compare_energy(baseline: EnergyReport,
                   customized: EnergyReport) -> float:
    """Relative energy saving of ``customized`` vs ``baseline``."""
    if not baseline.total:
        return 0.0
    return 1.0 - customized.total / baseline.total
