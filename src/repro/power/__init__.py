"""Activity-based energy model (the paper's power claims, quantified).

The paper claims two power benefits for ASBR (Sections 1, 6):

1. *fewer instructions pass through the pipeline* — folded branches
   never occupy a slot and wrong-path work shrinks with mispredictions;
2. *smaller tables* — a quarter-size auxiliary predictor plus the tiny
   BIT/BDT replaces a large PHT+BTB.

The paper asserts these qualitatively; this package quantifies them
with a standard activity-based model: every pipeline slot occupied,
memory access, predictor lookup/update and fold consumes energy
proportional to the structure's state size, plus static leakage
proportional to total state.  Constants are relative units calibrated
to the usual CACTI-style scaling (energy per access grows with the
square root of capacity); absolute joules are out of scope — the claim
under test is *relative* energy between configurations.
"""

from repro.power.model import (
    EnergyParams,
    EnergyReport,
    estimate_energy,
    estimate_energy_from_stats,
    compare_energy,
)

__all__ = [
    "EnergyParams",
    "EnergyReport",
    "estimate_energy",
    "estimate_energy_from_stats",
    "compare_energy",
]
