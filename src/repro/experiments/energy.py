"""Extension experiment E1 — energy (the paper's power claims).

The paper asserts, without numbers, that ASBR reduces power because (a)
folded branches and avoided wrong-path work mean fewer instructions
pass through the pipeline, and (b) the displaced predictor tables are
far smaller.  This driver quantifies both with the activity-based model
in :mod:`repro.power`: baseline (bimodal-2048) vs customized core
(ASBR + bi-512) on every benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.asbr import ASBRUnit
from repro.experiments import paper_data
from repro.experiments.common import (
    BENCHMARKS,
    ExperimentSetup,
    default_setup,
    render_table,
)
from repro.power import EnergyReport, compare_energy, estimate_energy
from repro.predictors import make_predictor
from repro.sim.pipeline import PipelineSimulator


@dataclass
class EnergyRow:
    benchmark: str
    baseline: EnergyReport
    customized: EnergyReport
    baseline_fetched: int
    customized_fetched: int

    @property
    def saving(self) -> float:
        return compare_energy(self.baseline, self.customized)


def _run_sim(setup: ExperimentSetup, bench: str, predictor_spec: str,
             with_asbr: bool) -> PipelineSimulator:
    wl = setup.workload(bench)
    stream = wl.input_stream(setup.pcm)
    asbr = None
    if with_asbr:
        sel = setup.selection(bench)
        asbr = ASBRUnit.from_branch_infos(sel.infos,
                                          bdt_update=setup.bdt_update)
    sim = PipelineSimulator(wl.program, wl.build_memory(stream),
                            predictor=make_predictor(predictor_spec),
                            asbr=asbr)
    sim.run()
    outputs = wl.read_output(sim.memory, len(stream))
    if outputs != wl.golden_output(setup.pcm):
        raise AssertionError("wrong output in energy run for %s" % bench)
    return sim


def run(setup: Optional[ExperimentSetup] = None) -> List[EnergyRow]:
    setup = setup if setup is not None else default_setup()
    rows = []
    for bench in BENCHMARKS:
        base_sim = _run_sim(setup, bench, "bimodal-2048", with_asbr=False)
        cust_sim = _run_sim(setup, bench, "bimodal-512-512", with_asbr=True)
        rows.append(EnergyRow(
            benchmark=bench,
            baseline=estimate_energy(base_sim),
            customized=estimate_energy(cust_sim),
            baseline_fetched=base_sim.stats.fetched,
            customized_fetched=cust_sim.stats.fetched))
    return rows


def render(rows: List[EnergyRow]) -> str:
    headers = ["benchmark", "baseline energy", "ASBR energy", "saving",
               "fetched (base)", "fetched (ASBR)"]
    cells = []
    for r in rows:
        cells.append([paper_data.DISPLAY[r.benchmark],
                      "%.0f" % r.baseline.total,
                      "%.0f" % r.customized.total,
                      "%.1f%%" % (100 * r.saving),
                      "{:,}".format(r.baseline_fetched),
                      "{:,}".format(r.customized_fetched)])
    return render_table(
        headers, cells,
        "Extension E1: relative energy, bimodal-2048 baseline vs "
        "ASBR + bi-512 (activity-based model)")


def main(setup: Optional[ExperimentSetup] = None) -> str:
    text = render(run(setup))
    print(text)
    return text


if __name__ == "__main__":
    main()
