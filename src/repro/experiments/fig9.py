"""Figure 9 — execution statistics for the ADPCM-encode fold set."""

from __future__ import annotations

from typing import Optional

from repro.experiments import paper_data
from repro.experiments.branch_tables import BranchTable, build_table
from repro.experiments.common import ExperimentSetup


def run(setup: Optional[ExperimentSetup] = None) -> BranchTable:
    return build_table("adpcm_enc", setup)


def render(table: BranchTable) -> str:
    return table.render(
        paper_exec=paper_data.FIG9_EXEC,
        paper_acc={"not-taken": paper_data.FIG9_NOT_TAKEN,
                   "bimodal": paper_data.FIG9_BIMODAL,
                   "gshare": paper_data.FIG9_GSHARE})


def main(setup: Optional[ExperimentSetup] = None) -> str:
    text = render(run(setup))
    print(text)
    return text


if __name__ == "__main__":
    main()
