"""Extension experiment E6 — how much of branch folding survives OoO.

The paper evaluates ASBR folding on an in-order embedded pipeline,
where every fetch bubble is a lost cycle — the strongest possible case
for a fetch-stage customization.  A dynamically scheduled core hides
much of that latency: while fetch recovers from a mispredicted branch,
the issue queue keeps draining older work, so removing a branch from
the fetch stream buys less than it does in-order.  This driver plots
the curve the paper could not: the fold win (cycles without ASBR /
cycles with ASBR, everything else equal) on the in-order machine vs
1/2/4-wide out-of-order backends (:mod:`repro.sim.ooo`) at several
active-list depths.

Each machine variant is evaluated with and without the paper's
threshold-2 folding unit on the Huffman decoder (the most
control-dominated workload, where folding has the most to lose).  The
verdict lines report the in-order fold speedup and, per OoO variant,
what fraction of that win survives — the number ROADMAP item 4 asks
for, asserted in CI via ``--quick``.

Journals land in ``results/dse/`` next to the E3/E5 frontiers, so
re-rendering is pure journal replay.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.dse import (
    DEFAULT_OBJECTIVES,
    ConfigSpace,
    DesignPoint,
    Evaluator,
    GridSearch,
    Journal,
    render_results_table,
)
from repro.dse.engine import EvalResult
from repro.experiments.common import (
    ExperimentSetup,
    default_setup,
    render_table,
)

#: the benchmark of the sweep: Huffman decoding is the repo's most
#: control-dominated workload — the strongest in-order fold win, hence
#: the most interesting retention question.
BENCHMARK = "huffman_dec"

JOURNAL_ROOT = os.path.join("results", "dse")


def ooo_space(quick: bool = False) -> ConfigSpace:
    """The {ASBR off/on} × {in-order, OoO width × ROB depth} sweep.

    The quick space keeps one ROB depth (32 — the default machine) so
    the CI smoke run still produces the headline 2-wide retention
    verdict; the full space adds shallow (16) and deep (64) active
    lists to show how the retention curve moves with window size.
    """
    return ConfigSpace(
        predictors=("bimodal-512-512",),
        asbr=(False, True),
        bit_capacities=(16,),
        bdt_updates=("execute",),          # the paper's threshold 2
        backends=("inorder", "ooo"),
        issue_widths=(1, 2, 4),
        rob_sizes=(32,) if quick else (16, 32, 64),
    )


def journal_path(setup: ExperimentSetup, quick: bool) -> str:
    return os.path.join(JOURNAL_ROOT, "ooo-%s-n%d-s%d%s.jsonl"
                        % (BENCHMARK, setup.n_samples, setup.seed,
                           "-quick" if quick else ""))


def run(setup: Optional[ExperimentSetup] = None,
        quick: bool = False) -> List[EvalResult]:
    """Evaluate the fold-sensitivity space (resumable via journal)."""
    setup = setup if setup is not None else default_setup()
    space = ooo_space(quick)
    with Journal(journal_path(setup, quick)).open({
            "space": space.digest(), "benchmark": BENCHMARK,
            "n_samples": setup.n_samples,
            "seed": setup.seed}) as journal:
        evaluator = Evaluator(BENCHMARK, setup.n_samples, setup.seed,
                              workers=setup.workers,
                              cache=setup.result_cache(),
                              journal=journal)
        return GridSearch().run(evaluator, space)


# ----------------------------------------------------------------------
# fold-win extraction
# ----------------------------------------------------------------------
def _machine(point: DesignPoint) -> Tuple[int, int]:
    """Machine identity of a point: (issue width, ROB) — (0, 0) is the
    in-order pipeline."""
    if point.backend != "ooo":
        return (0, 0)
    return (point.issue_width, point.rob_size)


def machine_tag(machine: Tuple[int, int]) -> str:
    if machine == (0, 0):
        return "in-order"
    return "%d-wide OoO (rob %d)" % machine


def fold_wins(evals: List[EvalResult]
              ) -> Dict[Tuple[int, int], Tuple[int, int, float]]:
    """Per machine variant: (cycles without ASBR, cycles with the
    threshold-2 unit, fold speedup)."""
    cycles: Dict[Tuple[int, int], Dict[bool, int]] = {}
    for r in evals:
        cycles.setdefault(_machine(r.point), {})[r.point.with_asbr] \
            = r.objectives.cycles
    out = {}
    for machine, by_asbr in sorted(cycles.items()):
        if True not in by_asbr or False not in by_asbr:
            continue                      # half-evaluated variant
        base, fold = by_asbr[False], by_asbr[True]
        out[machine] = (base, fold, base / fold if fold else 0.0)
    return out


def verdicts(evals: List[EvalResult]) -> List[str]:
    """The greppable result lines (asserted by the CI ooo-smoke step).

    Retention is measured on the win itself — ``(speedup - 1)`` — not
    on the speedup ratio, so a machine where folding buys nothing
    reports 0% rather than ~hiding behind the 1.0x floor.
    """
    wins = fold_wins(evals)
    lines = []
    inorder = wins.get((0, 0))
    if inorder is None:
        return ["in-order fold speedup: not evaluated"]
    lines.append("in-order fold speedup: %.3fx (%d -> %d cycles)"
                 % (inorder[2], inorder[0], inorder[1]))
    base_win = inorder[2] - 1.0
    for machine, (_, _, speedup) in sorted(wins.items()):
        if machine == (0, 0):
            continue
        retention = 100.0 * (speedup - 1.0) / base_win if base_win \
            else 0.0
        lines.append("fold-win retention at %s: %.1f%% of the in-order "
                     "win (%.3fx)"
                     % (machine_tag(machine), retention, speedup))
    lines.append("machine variants evaluated: %d" % len(wins))
    return lines


def render(evals: List[EvalResult]) -> str:
    wins = fold_wins(evals)
    inorder_win = wins.get((0, 0), (0, 0, 1.0))[2] - 1.0
    rows = []
    for machine, (base, fold, speedup) in sorted(wins.items()):
        retention = (100.0 * (speedup - 1.0) / inorder_win
                     if inorder_win else 0.0)
        rows.append([machine_tag(machine), "%d" % base, "%d" % fold,
                     "%.3fx" % speedup,
                     "-" if machine == (0, 0) else "%.1f%%" % retention])
    sections = [
        render_results_table(
            evals, DEFAULT_OBJECTIVES,
            title="Extension E6: %s fold sensitivity to dynamic "
                  "scheduling (%d configurations)"
                  % (BENCHMARK, len(evals))),
        render_table(
            ["machine", "cycles (no asbr)", "cycles (asbr t2)",
             "fold speedup", "win retained"],
            rows, title="Fold-win curve (threshold-2 ASBR, bit16, "
                        "bimodal-512-512)"),
        "\n".join(verdicts(evals)),
    ]
    return "\n\n".join(sections)


def main(setup: Optional[ExperimentSetup] = None,
         quick: bool = False) -> str:
    text = render(run(setup, quick=quick))
    print(text)
    return text


if __name__ == "__main__":
    main()
