"""Figure 7 — execution statistics for the branches selected for G.721.

The paper selects 16 branches for the encoder (Figure 7) and the same
set minus one for the decoder; both tables are reproduced here from our
own profile-driven selection over the G.721-style workloads.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments import paper_data
from repro.experiments.branch_tables import BranchTable, build_table
from repro.experiments.common import ExperimentSetup


def run(setup: Optional[ExperimentSetup] = None,
        benchmark: str = "g721_enc") -> BranchTable:
    return build_table(benchmark, setup)


def render(table: BranchTable) -> str:
    if table.benchmark == "g721_enc":
        return table.render(
            paper_exec=paper_data.FIG7_EXEC,
            paper_acc={"not-taken": paper_data.FIG7_NOT_TAKEN,
                       "bimodal": paper_data.FIG7_BIMODAL,
                       "gshare": paper_data.FIG7_GSHARE})
    return table.render()


def main(setup: Optional[ExperimentSetup] = None) -> str:
    parts = [render(run(setup, "g721_enc")),
             render(run(setup, "g721_dec"))]
    text = "\n\n".join(parts)
    print(text)
    return text


if __name__ == "__main__":
    main()
