"""Extension experiment E4 — soft errors in the ASBR state.

The paper's safety argument is architectural: a fold replays exactly
what the branch would have done, so ASBR cannot corrupt a correct
machine.  This experiment measures the flip side — what a *broken*
machine does.  One seeded injection campaign (same fault plan for
every protection model, :func:`repro.faults.run_protection_matrix`)
runs ADPCM encode under three assumptions about the new state:

* **none** — raw latches.  Expected: nonzero SDC — wrong-direction
  folds, folds to garbage targets, validity-protocol violations.  This
  is the exposure the paper's zero-risk framing leaves unquantified.
* **parity** — detect-on-read, fold suppressed, predictor fallback.
  Expected: zero SDC (a suppressed fold is just a fold miss), with the
  interventions visible as ``detected_recovered`` timing deviations.
* **ecc** — correct-on-read.  Expected: every injection masked and the
  run bit-identical to fault-free.

The three expectations are checked and printed as verdicts; a
violation prints FAILED (it would mean the protection model leaks).
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.experiments.common import ExperimentSetup, default_setup
from repro.faults import (
    CampaignConfig,
    CampaignReport,
    OUTCOME_MASKED,
    run_protection_matrix,
)
from repro.faults.report import render_matrix

#: the paper's headline auxiliary predictor (fig. 11)
PREDICTOR = "bimodal-512-512"
BENCHMARK = "adpcm_enc"

#: injections per protection model; override with REPRO_FAULTS
N_FAULTS = int(os.environ.get("REPRO_FAULTS", "24"))
FAULT_SEED = 1


def campaign_config(setup: ExperimentSetup) -> CampaignConfig:
    return CampaignConfig(benchmark=BENCHMARK,
                          n_samples=setup.n_samples, seed=setup.seed,
                          predictor_spec=PREDICTOR,
                          bit_capacity=setup.bit_capacity,
                          bdt_update=setup.bdt_update,
                          n_faults=N_FAULTS, fault_seed=FAULT_SEED)


def run(setup: Optional[ExperimentSetup] = None
        ) -> Dict[str, CampaignReport]:
    setup = setup if setup is not None else default_setup()
    return run_protection_matrix(campaign_config(setup))


def _verdicts(reports: Dict[str, CampaignReport]) -> str:
    none_sdc = reports["none"].sdc_total
    parity_sdc = reports["parity"].sdc_total
    ecc = reports["ecc"]
    ecc_identical = all(r.outcome == OUTCOME_MASKED
                        and r.detail in ("", "corrected")
                        for r in ecc.injections)
    lines = [
        "unprotected ASBR state: %d/%d injections were SDC — %s"
        % (none_sdc, len(reports["none"].injections),
           "EXPOSED (as expected: folds are only as safe as the "
           "tables)" if none_sdc
           else "no SDC observed; raise REPRO_FAULTS for more trials"),
        "parity-protected:       %d SDC, %d folds suppressed — %s"
        % (parity_sdc,
           sum(r.suppressed_folds for r in reports["parity"].injections),
           "OK: zero wrong-path folds, predictor fallback covers "
           "detection" if parity_sdc == 0 else "FAILED — parity leaked "
           "a wrong-path fold"),
        "ECC-protected:          every run %s"
        % ("bit-identical to fault-free — OK" if ecc_identical
           and ecc.sdc_total == 0 else "NOT identical — FAILED"),
    ]
    return "\n".join(lines)


def render(reports: Dict[str, CampaignReport]) -> str:
    title = ("Extension E4: soft-error vulnerability of the ASBR state "
             "(%s, %d faults per protection, fault_seed=%d)"
             % (BENCHMARK, N_FAULTS, FAULT_SEED))
    return "\n".join([title, "", render_matrix(reports),
                      _verdicts(reports)])


def main(setup: Optional[ExperimentSetup] = None) -> str:
    text = render(run(setup))
    print(text)
    return text


if __name__ == "__main__":
    main()
