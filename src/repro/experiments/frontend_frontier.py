"""Extension experiment E5 — branch folding vs a modern front end.

The paper's fetch-stage folding (2001) predates decoupled front ends:
a branch-prediction unit running ahead of fetch through a two-level
BTB, filling a fetch target queue whose entries drive fetch-directed
instruction prefetching (FDIP) into the I-cache (see PAPERS.md:
"Fetch-Directed Instruction Prefetching Revisited"; "Micro BTB").
This driver asks the question those two decades raise: *does ASBR
folding still earn its table bits once the front end predicts and
prefetches ahead?*

It sweeps {ASBR on/off} × {decoupled frontend off/on, BTB sizing, FTQ
depth, FDIP on/off} × BIT capacity on the Huffman decoder (the
control-dominated benchmark FDIP has the most to offer), computes the
speedup / table-bits / energy Pareto frontier, and reports — per
front-end variant — whether the paper's threshold-2 folding
configuration stays non-dominated or drops off the frontier.  The
expected shape: behind a plain decoupled front end (no FDIP) folding
pays frontend SRAM for zero extra cycles and *drops off*; with FDIP
the combined core is the fastest point in the pool and folding is
*non-dominated* again.

Journals land in ``results/dse/`` next to the E3 frontier's, so
re-rendering is pure journal replay.  ``quick=True`` (the CI smoke
mode, ``repro experiments frontend_frontier --quick``) shrinks the
sweep to the verdict-bearing corner of the space.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.dse import (
    DEFAULT_OBJECTIVES,
    ConfigSpace,
    DesignPoint,
    Evaluator,
    GridSearch,
    Journal,
    frontier_of,
    render_frontier_plot,
    render_results_table,
)
from repro.dse.engine import EvalResult
from repro.experiments.common import ExperimentSetup, default_setup

#: the benchmark of the sweep: Huffman decoding is the repo's most
#: control-dominated workload, the class both ASBR and FDIP target.
BENCHMARK = "huffman_dec"

JOURNAL_ROOT = os.path.join("results", "dse")


def frontend_space(quick: bool = False) -> ConfigSpace:
    """The {ASBR} × {frontend, BTB, FTQ, FDIP} × {BIT bits} sweep.

    The quick space keeps one point per verdict: frontend off, plain
    frontend, and frontend+FDIP, each with and without the threshold-2
    ASBR unit.  The full space adds BTB/FTQ sizing and a second BIT
    capacity so the frontier has a real table-bits axis.
    """
    if quick:
        return ConfigSpace(
            predictors=("bimodal-512-512",),
            asbr=(False, True),
            bit_capacities=(16,),
            bdt_updates=("execute",),          # the paper's threshold 2
            frontends=(False, True),
            btb_l1_entries=(64,),
            btb_l2_entries=(2048,),
            ftq_depths=(8,),
            fdip=(False, True),
        )
    return ConfigSpace(
        predictors=("bimodal-512-512",),
        asbr=(False, True),
        bit_capacities=(4, 16),
        bdt_updates=("execute",),
        frontends=(False, True),
        btb_l1_entries=(16, 64),
        btb_l2_entries=(2048,),
        ftq_depths=(4, 8),
        fdip=(False, True),
    )


def journal_path(setup: ExperimentSetup, quick: bool) -> str:
    return os.path.join(JOURNAL_ROOT, "frontend-%s-n%d-s%d%s.jsonl"
                        % (BENCHMARK, setup.n_samples, setup.seed,
                           "-quick" if quick else ""))


def run(setup: Optional[ExperimentSetup] = None,
        quick: bool = False) -> List[EvalResult]:
    """Evaluate the frontend space on the Huffman decoder (resumable)."""
    setup = setup if setup is not None else default_setup()
    space = frontend_space(quick)
    with Journal(journal_path(setup, quick)).open({
            "space": space.digest(), "benchmark": BENCHMARK,
            "n_samples": setup.n_samples,
            "seed": setup.seed}) as journal:
        evaluator = Evaluator(BENCHMARK, setup.n_samples, setup.seed,
                              workers=setup.workers,
                              cache=setup.result_cache(),
                              journal=journal)
        return GridSearch().run(evaluator, space)


def _frontend_tag(point: DesignPoint) -> str:
    """Human name of a point's front-end variant."""
    if not point.frontend:
        return "no frontend"
    return "fe(btb %d/%d, ftq %d)%s" % (
        point.btb_l1_entries, point.btb_l2_entries, point.ftq_depth,
        " + fdip" if point.fdip else "")


def verdicts(evals: List[EvalResult]) -> List[str]:
    """Per-front-end-variant fate of the threshold-2 folding point.

    For every front-end variant present in the pool, finds the ASBR
    threshold-2 points behind that variant and reports whether each is
    on the full-pool frontier (NON-DOMINATED) or has dropped off.
    """
    front_ids = set(id(r) for r in frontier_of(evals, DEFAULT_OBJECTIVES))
    lines = []
    evaluated_t2 = 0
    for r in evals:
        p = r.point
        if not (p.with_asbr and p.bdt_update == "execute"):
            continue
        evaluated_t2 += 1
        fate = ("NON-DOMINATED — folding stays on the frontier"
                if id(r) in front_ids
                else "DOMINATED — folding drops off the frontier here")
        lines.append("threshold-2 folding (bit%d) behind %s: %s"
                     % (p.bit_capacity, _frontend_tag(p), fate))
    lines.append("threshold-2 ASBR points evaluated: %d" % evaluated_t2)
    return lines


def render(evals: List[EvalResult]) -> str:
    sections = [
        render_results_table(
            evals, DEFAULT_OBJECTIVES,
            title="Extension E5: %s folding-vs-frontend frontier "
                  "(%d configurations)" % (BENCHMARK, len(evals))),
        render_frontier_plot(evals),
        "\n".join(verdicts(evals)),
    ]
    return "\n\n".join(sections)


def main(setup: Optional[ExperimentSetup] = None,
         quick: bool = False) -> str:
    text = render(run(setup, quick=quick))
    print(text)
    return text


if __name__ == "__main__":
    main()
