"""Extension experiment E3 — the paper's story as a Pareto frontier.

Figures 9-11 hand-pick configurations: the ASBR core with a
quarter-size auxiliary bimodal, at the aggressive threshold-2 (post-EX)
forwarding path.  This driver runs the whole paper configuration space
(:func:`repro.dse.space.paper_space`) on the ADPCM pair through the DSE
engine and shows *where those hand-picked points sit* on the computed
speedup / table-cost / energy frontier: the threshold-2 customized core
must come out non-dominated — the paper's choice is a frontier point,
not an arbitrary one.

Journals land in ``results/dse/`` keyed by (benchmark, input), so
re-rendering the figure is pure journal replay.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.dse import (
    DEFAULT_OBJECTIVES,
    DesignPoint,
    Evaluator,
    GridSearch,
    Journal,
    frontier_of,
    paper_space,
    render_frontier_plot,
    render_results_table,
)
from repro.dse.engine import EvalResult
from repro.experiments.common import ExperimentSetup, default_setup

#: the benchmarks of figures 9 and 10.
BENCHMARKS: Tuple[str, ...] = ("adpcm_enc", "adpcm_dec")

#: the configuration the paper's headline results use (fig. 11,
#: Section 8): ASBR + quarter-size bimodal at threshold 2.
PAPER_CONFIG = DesignPoint(predictor_spec="bimodal-512-512",
                           with_asbr=True, bit_capacity=16,
                           bdt_update="execute")

JOURNAL_ROOT = os.path.join("results", "dse")


def journal_path(benchmark: str, setup: ExperimentSetup) -> str:
    return os.path.join(JOURNAL_ROOT, "%s-n%d-s%d.jsonl"
                        % (benchmark, setup.n_samples, setup.seed))


def run(setup: Optional[ExperimentSetup] = None
        ) -> Dict[str, List[EvalResult]]:
    """Evaluate the paper space on both ADPCM benchmarks (resumable)."""
    setup = setup if setup is not None else default_setup()
    space = paper_space()
    results: Dict[str, List[EvalResult]] = {}
    for bench in BENCHMARKS:
        with Journal(journal_path(bench, setup)).open({
                "space": space.digest(), "benchmark": bench,
                "n_samples": setup.n_samples,
                "seed": setup.seed}) as journal:
            evaluator = Evaluator(bench, setup.n_samples, setup.seed,
                                  workers=setup.workers,
                                  cache=setup.result_cache(),
                                  journal=journal)
            results[bench] = GridSearch().run(evaluator, space)
    return results


def render(results: Dict[str, List[EvalResult]]) -> str:
    sections = []
    for bench, evals in results.items():
        front = frontier_of(evals, DEFAULT_OBJECTIVES)
        on_front = any(r.point == PAPER_CONFIG for r in front)
        sections.append(render_results_table(
            evals, DEFAULT_OBJECTIVES,
            title="Extension E3: %s design-space frontier "
                  "(%d configurations)" % (bench, len(evals))))
        sections.append(render_frontier_plot(evals))
        sections.append(
            "paper's threshold-2 configuration (%s): %s"
            % (PAPER_CONFIG.label(),
               "NON-DOMINATED — on the frontier" if on_front
               else "DOMINATED — check the model"))
    return "\n\n".join(sections)


def main(setup: Optional[ExperimentSetup] = None) -> str:
    text = render(run(setup))
    print(text)
    return text


if __name__ == "__main__":
    main()
