"""Ablation studies for the design choices the paper argues for.

* :func:`threshold_sweep` — BDT update point (Section 5.2): commit
  (threshold 4) vs post-MEM forwarding (3) vs post-EX (2).
* :func:`bit_size_sweep` — Amdahl-style selectivity (Section 6): cycles
  as a function of BIT capacity.
* :func:`area_table` — predictor state bits vs accuracy, with ASBR
  configurations included ("comparable branch prediction accuracies ...
  at significantly lower area costs").
* :func:`scheduling_study` — compiler support (Section 5.1): fold
  distances and ASBR benefit on naive vs scheduled code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.asbr import ASBRUnit
from repro.experiments.common import (
    ExperimentSetup,
    default_setup,
    render_table,
)
from repro.predictors import evaluate_on_trace, make_predictor
from repro.sched import schedule_program, static_fold_distances
from repro.workloads import get_workload


# ----------------------------------------------------------------------
# A1: BDT update point / threshold
# ----------------------------------------------------------------------
@dataclass
class ThresholdRow:
    bdt_update: str
    threshold: int
    cycles: int
    selected: int


def threshold_sweep(benchmark: str = "adpcm_enc",
                    setup: Optional[ExperimentSetup] = None
                    ) -> List[ThresholdRow]:
    setup = setup if setup is not None else default_setup()
    from repro.asbr.folding import THRESHOLD_BY_UPDATE
    setup.prefetch((benchmark, "bimodal-512-512", True, None, update)
                   for update in THRESHOLD_BY_UPDATE)
    rows = []
    for update, threshold in sorted(THRESHOLD_BY_UPDATE.items(),
                                    key=lambda kv: kv[1]):
        sel = setup.selection(benchmark, bdt_update=update)
        stats = setup.run(benchmark, "bimodal-512-512", with_asbr=True,
                          bdt_update=update)
        rows.append(ThresholdRow(update, threshold, stats.cycles,
                                 len(sel.selected)))
    return rows


def render_threshold(rows: List[ThresholdRow], benchmark: str) -> str:
    cells = [[r.bdt_update, str(r.threshold), "{:,}".format(r.cycles),
              str(r.selected)] for r in rows]
    return render_table(
        ["BDT update", "threshold", "cycles", "branches selected"], cells,
        "Ablation A1 (%s): forwarding path into the early-condition "
        "logic" % benchmark)


# ----------------------------------------------------------------------
# A2: BIT capacity
# ----------------------------------------------------------------------
@dataclass
class BitSizeRow:
    capacity: int
    cycles: int
    selected: int
    state_bits: int


def bit_size_sweep(benchmark: str = "g721_enc",
                   capacities=(1, 2, 4, 8, 16),
                   setup: Optional[ExperimentSetup] = None
                   ) -> List[BitSizeRow]:
    setup = setup if setup is not None else default_setup()
    setup.prefetch((benchmark, "bimodal-512-512", True, cap)
                   for cap in capacities)
    rows = []
    for cap in capacities:
        sel = setup.selection(benchmark, bit_capacity=cap)
        stats = setup.run(benchmark, "bimodal-512-512", with_asbr=True,
                          bit_capacity=cap)
        unit = ASBRUnit.from_branch_infos(sel.infos, capacity=cap,
                                          bdt_update=setup.bdt_update)
        rows.append(BitSizeRow(cap, stats.cycles, len(sel.selected),
                               unit.state_bits))
    return rows


def render_bit_size(rows: List[BitSizeRow], benchmark: str) -> str:
    cells = [[str(r.capacity), "{:,}".format(r.cycles), str(r.selected),
              "{:,}".format(r.state_bits)] for r in rows]
    return render_table(
        ["BIT entries", "cycles", "branches", "ASBR state bits"], cells,
        "Ablation A2 (%s): benefit vs BIT capacity (Amdahl selectivity)"
        % benchmark)


# ----------------------------------------------------------------------
# A4: predictor area vs accuracy
# ----------------------------------------------------------------------
@dataclass
class AreaRow:
    config: str
    state_bits: int
    accuracy: float            # trace accuracy over remaining branches
    cycles: int


def area_table(benchmark: str = "adpcm_enc",
               setup: Optional[ExperimentSetup] = None) -> List[AreaRow]:
    """Accuracy and cycles vs hardware state, with and without ASBR."""
    setup = setup if setup is not None else default_setup()
    setup.prefetch(
        [(benchmark, spec, False)
         for spec in ("bimodal-256-512", "bimodal-512-512", "bimodal-2048",
                      "gshare-2048-11-2048", "combining-2048")]
        + [(benchmark, spec, True)
           for spec in ("bimodal-256-512", "bimodal-512-512")])
    rows = []
    for spec in ("bimodal-256-512", "bimodal-512-512", "bimodal-2048",
                 "gshare-2048-11-2048", "combining-2048"):
        pred = make_predictor(spec)
        acc = evaluate_on_trace(pred, setup.trace(benchmark))
        # combining is an extension: no full pipeline baseline needed
        cycles = setup.run(benchmark, spec, with_asbr=False).cycles
        rows.append(AreaRow(spec, pred.state_bits, acc.accuracy, cycles))
    # ASBR rows: auxiliary predictor sees only the unfolded branches
    sel = setup.selection(benchmark)
    for spec in ("bimodal-256-512", "bimodal-512-512"):
        pred = make_predictor(spec)
        acc = evaluate_on_trace(pred, setup.trace(benchmark),
                                skip_pcs=sel.pcs)
        unit = ASBRUnit.from_branch_infos(sel.infos,
                                          bdt_update=setup.bdt_update)
        cycles = setup.run(benchmark, spec, with_asbr=True).cycles
        rows.append(AreaRow("ASBR+" + spec,
                            pred.state_bits + unit.state_bits,
                            acc.accuracy, cycles))
    return rows


def render_area(rows: List[AreaRow], benchmark: str) -> str:
    cells = [[r.config, "{:,}".format(r.state_bits),
              "%.1f%%" % (100 * r.accuracy), "{:,}".format(r.cycles)]
             for r in rows]
    return render_table(
        ["configuration", "state bits", "accuracy", "cycles"], cells,
        "Ablation A4 (%s): area vs accuracy vs cycles" % benchmark)


# ----------------------------------------------------------------------
# A3: instruction scheduling
# ----------------------------------------------------------------------
@dataclass
class SchedulingStudy:
    benchmark: str
    distances_before: Dict[int, Optional[int]]
    distances_after: Dict[int, Optional[int]]
    cycles_before: int
    cycles_after: int
    folds_before: int
    folds_after: int
    cycles_hand: int        # the hand-scheduled production variant
    folds_hand: int


def scheduling_study(setup: Optional[ExperimentSetup] = None,
                     benchmark: str = "adpcm_enc_unsched",
                     hand_benchmark: str = "adpcm_enc") -> SchedulingStudy:
    """ASBR on naive code before/after the list scheduler, plus the
    hand-scheduled variant (the paper's "manual scheduling") as the
    upper reference point — manual/global code motion reaches branches
    whose basic blocks are too small for a local scheduler."""
    setup = setup if setup is not None else default_setup()
    wl = get_workload(benchmark)
    pcm = setup.pcm
    sched_wl = wl.with_program(schedule_program(wl.program))
    hand_wl = get_workload(hand_benchmark)

    results = {}
    for tag, w in (("before", wl), ("after", sched_wl),
                   ("hand", hand_wl)):
        from repro.profiling import BranchProfiler, select_branches
        stream = w.input_stream(pcm)
        profile = BranchProfiler().profile(w.program, w.build_memory(stream))
        sel = select_branches(profile, bit_capacity=setup.bit_capacity,
                              bdt_update=setup.bdt_update)
        unit = ASBRUnit.from_branch_infos(sel.infos,
                                          bdt_update=setup.bdt_update)
        res = w.run_pipeline(pcm, predictor=make_predictor("bimodal-512-512"),
                             asbr=unit)
        if res.outputs != w.golden_output(pcm):
            raise AssertionError("scheduling broke %s" % w.name)
        results[tag] = (res.stats.cycles, unit.stats.folded, w.program)

    return SchedulingStudy(
        benchmark=benchmark,
        distances_before=static_fold_distances(results["before"][2]),
        distances_after=static_fold_distances(results["after"][2]),
        cycles_before=results["before"][0],
        cycles_after=results["after"][0],
        folds_before=results["before"][1],
        folds_after=results["after"][1],
        cycles_hand=results["hand"][0],
        folds_hand=results["hand"][1])


def render_scheduling(study: SchedulingStudy) -> str:
    def _summary(distances):
        known = [d for d in distances.values() if d is not None]
        ge3 = sum(1 for d in known if d >= 3)
        return "%d zero-cond branches, %d with local distance >= 3" \
            % (len(distances), ge3)

    lines = [
        "Ablation A3 (%s): instruction scheduling for ASBR" % study.benchmark,
        "  naive code      : %s" % _summary(study.distances_before),
        "                    cycles=%s folds=%s"
        % ("{:,}".format(study.cycles_before),
           "{:,}".format(study.folds_before)),
        "  list-scheduled  : %s" % _summary(study.distances_after),
        "                    cycles=%s folds=%s"
        % ("{:,}".format(study.cycles_after),
           "{:,}".format(study.folds_after)),
        "  hand-scheduled  : cycles=%s folds=%s  (paper's manual/global "
        "scheduling)" % ("{:,}".format(study.cycles_hand),
                         "{:,}".format(study.folds_hand)),
    ]
    return "\n".join(lines)


def main(setup: Optional[ExperimentSetup] = None) -> str:
    setup = setup if setup is not None else default_setup()
    parts = [
        render_threshold(threshold_sweep("adpcm_enc", setup), "adpcm_enc"),
        render_bit_size(bit_size_sweep("g721_enc", setup=setup), "g721_enc"),
        render_area(area_table("adpcm_enc", setup), "adpcm_enc"),
        render_scheduling(scheduling_study(setup)),
    ]
    text = "\n\n".join(parts)
    print(text)
    return text


if __name__ == "__main__":
    main()
