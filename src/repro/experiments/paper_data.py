"""The paper's reported numbers, transcribed from its figures.

Used only for side-by-side "paper vs measured" reporting; no experiment
derives anything from these values.
"""

#: Display order and names of the four benchmarks.
BENCHMARK_NAMES = ("adpcm_enc", "adpcm_dec", "g721_enc", "g721_dec")

DISPLAY = {
    "adpcm_enc": "ADPCM Encode",
    "adpcm_dec": "ADPCM Decode",
    "g721_enc": "G.721 Encode",
    "g721_dec": "G.721 Decode",
}

#: Figure 6 — branch predictability of the benchmarks.
#: benchmark -> predictor -> (cycles, cpi, accuracy)
FIG6 = {
    "adpcm_enc": {
        "not-taken": (12_232_809, 1.85, 0.32),
        "bimodal": (9_354_462, 1.41, 0.69),
        "gshare": (8_454_179, 1.28, 0.82),
    },
    "adpcm_dec": {
        "not-taken": (10_818_933, 1.96, 0.31),
        "bimodal": (7_909_813, 1.44, 0.71),
        "gshare": (7_267_628, 1.32, 0.81),
    },
    "g721_enc": {
        "not-taken": (80_695_528, 1.73, 0.53),
        "bimodal": (62_130_909, 1.33, 0.91),
        "gshare": (62_317_531, 1.33, 0.91),
    },
    "g721_dec": {
        "not-taken": (80_418_120, 1.83, 0.53),
        "bimodal": (62_820_828, 1.43, 0.91),
        "gshare": (63_128_743, 1.44, 0.90),
    },
}

#: Figure 7 — the 16 branches selected for G.721 encode.
#: rows: exec count and per-predictor accuracy for br0..br15.
FIG7_EXEC = [200_000, 200_000, 200_000, 25_000, 23_514, 25_000, 25_000,
             25_000, 25_000, 24_995, 150_000, 150_000, 1_761_060, 23_514,
             24_997, 25_000]
FIG7_NOT_TAKEN = [0.99, 0.74, 0.51, 1.00, 0.51, 1.00, 1.00, 0.00,
                  0.99, 0.52, 0.00, 0.94, 0.89, 0.51, 0.49, 1.00]
FIG7_BIMODAL = [0.99, 0.70, 0.51, 1.00, 0.50, 1.00, 1.00, 1.00,
                0.99, 0.51, 1.00, 0.96, 0.88, 0.50, 0.50, 1.00]
FIG7_GSHARE = [0.99, 0.81, 0.52, 0.99, 0.61, 0.96, 0.95, 0.97,
               0.99, 0.91, 0.99, 0.96, 0.86, 0.50, 0.93, 0.99]

#: Figure 9 — the 4 branches selected for ADPCM encode.
FIG9_EXEC = [147_520, 147_520, 147_520, 147_520]
FIG9_NOT_TAKEN = [0.48, 0.31, 0.48, 0.50]
FIG9_BIMODAL = [0.43, 0.63, 0.43, 0.50]
FIG9_GSHARE = [0.61, 0.65, 0.84, 0.91]

#: Figure 10 — the 3 branches selected for ADPCM decode.
FIG10_EXEC = [147_520, 147_520, 147_520]
FIG10_NOT_TAKEN = [0.50, 0.31, 0.48]
FIG10_BIMODAL = [0.00, 0.63, 0.43]
FIG10_GSHARE = [0.91, 0.88, 0.59]

#: Numbers of branches the paper loaded into the 16-entry BIT.
SELECTED_COUNTS = {
    "adpcm_enc": 4,
    "adpcm_dec": 3,
    "g721_enc": 16,
    "g721_dec": 15,
}

#: Figure 11 — ASBR results: benchmark -> aux predictor ->
#: (cycles, improvement).  The not-taken row's improvement is relative
#: to Figure 6's not-taken baseline; bi-512/bi-256 rows are relative to
#: Figure 6's 2048-entry bimodal baseline.
FIG11 = {
    "adpcm_enc": {
        "not-taken": (10_328_867, 0.16),
        "bi-512": (7_282_057, 0.22),
        "bi-256": (7_282_095, 0.22),
    },
    "adpcm_dec": {
        "not-taken": (9_367_586, 0.13),
        "bi-512": (6_321_949, 0.20),
        "bi-256": (6_321_992, 0.20),
    },
    "g721_enc": {
        "not-taken": (76_089_314, 0.06),
        "bi-512": (57_550_878, 0.07),
        "bi-256": (57_989_836, 0.07),
    },
    "g721_dec": {
        "not-taken": (80_418_120, 0.05),
        "bi-512": (58_913_062, 0.06),
        "bi-256": (59_159_275, 0.06),
    },
}

#: Headline claim from the abstract.
HEADLINE_IMPROVEMENT_RANGE = (0.07, 0.22)
