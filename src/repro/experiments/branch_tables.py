"""Shared driver for the per-branch statistics tables (Figures 7/9/10).

The paper's Figures 7, 9 and 10 show, for the branches selected for
folding in each benchmark, the execution count and the accuracy each
baseline predictor achieves on that branch.  This module reproduces the
table for any benchmark from the profile-driven selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.experiments.common import (
    ExperimentSetup,
    default_setup,
    render_table,
)
from repro.experiments.fig6 import PREDICTORS


@dataclass
class BranchRow:
    """One selected branch's statistics."""

    index: int                 # br0, br1, ... (rank order)
    pc: int
    label: Optional[str]       # nearest label in the assembly, if any
    exec_count: int
    accuracy: dict             # predictor name -> accuracy on this branch


@dataclass
class BranchTable:
    benchmark: str
    rows: List[BranchRow]

    def render(self, paper_exec=None, paper_acc=None) -> str:
        headers = ["branch", "pc", "label", "exec#"] \
            + ["%s" % p for p in PREDICTORS]
        cells = []
        for r in self.rows:
            cells.append(["br%d" % r.index, "0x%x" % r.pc,
                          r.label or "-", "{:,}".format(r.exec_count)]
                         + ["%.2f" % r.accuracy[p] for p in PREDICTORS])
        text = render_table(
            headers, cells,
            "Branches selected for %s (measured)" % self.benchmark)
        if paper_exec is not None:
            paper_rows = []
            for i, n in enumerate(paper_exec):
                paper_rows.append(
                    ["br%d" % i, "-", "-", "{:,}".format(n)]
                    + ["%.2f" % paper_acc[p][i] for p in PREDICTORS])
            text += "\n\n" + render_table(
                headers, paper_rows,
                "Paper-reported values (MediaBench inputs)")
        return text


def build_table(benchmark: str,
                setup: Optional[ExperimentSetup] = None,
                bit_capacity: Optional[int] = None) -> BranchTable:
    """Select branches for ``benchmark`` and tabulate their behaviour."""
    setup = setup if setup is not None else default_setup()
    selection = setup.selection(benchmark, bit_capacity=bit_capacity)
    accs = {pname: setup.accuracy(benchmark, spec)
            for pname, spec in PREDICTORS.items()}
    program = setup.workload(benchmark).program
    rows = []
    for i, sel in enumerate(selection.selected):
        pc = sel.pc
        rows.append(BranchRow(
            index=i, pc=pc, label=_nearest_label(program, pc),
            exec_count=sel.stats.count,
            accuracy={p: accs[p].pc_accuracy(pc) for p in PREDICTORS}))
    return BranchTable(benchmark, rows)


def _nearest_label(program, pc: int) -> Optional[str]:
    """The label at ``pc`` itself, if the assembly marked the branch."""
    return program.label_at(pc)
