"""Experiment drivers: one per table/figure of the paper's evaluation.

* :mod:`repro.experiments.fig6`  — baseline branch predictability
  (cycles, CPI, accuracy for not-taken / bimodal / gshare × 4 benchmarks).
* :mod:`repro.experiments.fig7`  — per-branch statistics for the
  branches selected for G.721 encode (and decode).
* :mod:`repro.experiments.fig9`  — per-branch statistics, ADPCM encode.
* :mod:`repro.experiments.fig10` — per-branch statistics, ADPCM decode.
* :mod:`repro.experiments.fig11` — ASBR results (cycles + improvement
  with not-taken / bi-512 / bi-256 auxiliary predictors).
* :mod:`repro.experiments.ablations` — threshold, BIT-size, scheduling
  and predictor-area studies backing the paper's design-choice claims.
* :mod:`repro.experiments.dse_frontier` — the paper space as a computed
  speedup/cost/energy Pareto frontier (:mod:`repro.dse`).
* :mod:`repro.experiments.frontend_frontier` — ASBR folding vs a
  decoupled BTB/FTQ/FDIP front end (:mod:`repro.frontend`) on the same
  frontier.
* :mod:`repro.experiments.ooo_fold_sensitivity` — the fold-win curve
  across in-order and 1/2/4-wide out-of-order backends
  (:mod:`repro.sim.ooo`) at several active-list depths.
* :mod:`repro.experiments.fault_campaign` — soft-error vulnerability of
  the ASBR state under none/parity/ECC protection (:mod:`repro.faults`).

Paper-reported numbers live in :mod:`repro.experiments.paper_data`;
every driver prints measured-vs-paper so the shape comparison is
explicit.  Inputs are scaled down ~20x relative to MediaBench (see
DESIGN.md); set ``REPRO_SAMPLES`` to override.
"""

from repro.experiments.common import (
    BENCHMARKS,
    ExperimentSetup,
    default_setup,
)
from repro.experiments import (
    ablations,
    dse_frontier,
    energy,
    fault_campaign,
    fig6,
    fig7,
    fig9,
    fig10,
    fig11,
    frontend_frontier,
    ooo_fold_sensitivity,
    paper_data,
)

__all__ = [
    "BENCHMARKS",
    "ExperimentSetup",
    "default_setup",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "ablations",
    "dse_frontier",
    "energy",
    "frontend_frontier",
    "ooo_fold_sensitivity",
    "fault_campaign",
    "paper_data",
]
