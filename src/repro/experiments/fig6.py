"""Figure 6 — branch predictability of the benchmarks.

For each of the four benchmarks, run the pipeline with the three
general-purpose baseline predictors of the paper:

* ``not taken`` — sequential fetch, no predictor hardware;
* ``bimodal``   — 2048 2-bit counters + 2048-entry BTB;
* ``gshare``    — 11-bit global history, 2048-entry PHT + 2048-entry BTB;

and report total cycles, CPI and prediction accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments import paper_data
from repro.experiments.common import (
    BENCHMARKS,
    ExperimentSetup,
    default_setup,
    render_table,
)

#: experiment predictor name -> spec string for make_predictor
PREDICTORS = {
    "not-taken": "not-taken",
    "bimodal": "bimodal-2048",
    "gshare": "gshare-2048-11-2048",
}


@dataclass
class Fig6Row:
    benchmark: str
    predictor: str
    cycles: int
    cpi: float
    accuracy: float


def run(setup: Optional[ExperimentSetup] = None) -> List[Fig6Row]:
    """Produce all twelve Figure 6 cells."""
    setup = setup if setup is not None else default_setup()
    setup.prefetch((bench, spec, False)
                   for bench in BENCHMARKS
                   for spec in PREDICTORS.values())
    rows = []
    for bench in BENCHMARKS:
        for pname, spec in PREDICTORS.items():
            stats = setup.run(bench, spec, with_asbr=False)
            rows.append(Fig6Row(bench, pname, stats.cycles, stats.cpi,
                                stats.branch_accuracy))
    return rows


def render(rows: List[Fig6Row]) -> str:
    """Measured-vs-paper text table."""
    by_key: Dict[tuple, Fig6Row] = {(r.benchmark, r.predictor): r
                                    for r in rows}
    headers = ["benchmark", "predictor",
               "cycles", "CPI", "acc",
               "paper cycles", "paper CPI", "paper acc"]
    out = []
    for bench in BENCHMARKS:
        for pname in PREDICTORS:
            r = by_key[(bench, pname)]
            p_cyc, p_cpi, p_acc = paper_data.FIG6[bench][pname]
            out.append([paper_data.DISPLAY[bench], pname,
                        "{:,}".format(r.cycles), "%.2f" % r.cpi,
                        "%.0f%%" % (100 * r.accuracy),
                        "{:,}".format(p_cyc), "%.2f" % p_cpi,
                        "%.0f%%" % (100 * p_acc)])
    return render_table(headers, out,
                        "Figure 6: branch predictability (measured vs paper; "
                        "paper inputs are ~20x longer)")


def main(setup: Optional[ExperimentSetup] = None) -> str:
    text = render(run(setup))
    print(text)
    return text


if __name__ == "__main__":
    main()
