"""Shared experiment infrastructure: setup, caching, table rendering.

Pipeline runs are the expensive part of every experiment, and several
figures need the same (workload, predictor, ASBR) runs.  An
:class:`ExperimentSetup` memoises them so e.g. the Figure 11 driver and
its benchmark wrapper never simulate the same configuration twice in a
process.

Two further layers ride on :mod:`repro.runner`:

* ``workers > 1`` (or ``REPRO_WORKERS``) lets :meth:`ExperimentSetup.
  prefetch` compute a figure's whole configuration matrix on a process
  pool before the driver walks it serially;
* ``cache_dir`` (or ``REPRO_CACHE_DIR``) adds a content-addressed
  on-disk cache, so re-rendering a figure with unchanged programs and
  inputs costs one JSON read per configuration instead of a simulation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asbr import ASBRUnit
from repro.experiments import paper_data
from repro.predictors import evaluate_on_trace, make_predictor
from repro.predictors.evaluate import PredictorAccuracy
from repro.profiling import BranchProfiler, SelectionResult, select_branches
from repro.profiling.profiler import BranchProfile
from repro.runner import ResultCache, RunSpec, key_for_spec, run_sweep
from repro.sim.functional import BranchRecord, collect_branch_trace
from repro.sim.pipeline import PipelineStats
from repro.workloads import get_workload, speech_like
from repro.workloads.loader import Workload

BENCHMARKS = paper_data.BENCHMARK_NAMES

#: Default input length; the paper's inputs are ~20x longer (see
#: DESIGN.md's substitution table).  Override with REPRO_SAMPLES.
DEFAULT_SAMPLES = int(os.environ.get("REPRO_SAMPLES", "2000"))
DEFAULT_SEED = 20010618  # DAC 2001 opened June 18, 2001

#: BDT update point used for the headline experiments: the paper's
#: aggressive execute-stage forwarding path (threshold 2, Section 5.2).
DEFAULT_BDT_UPDATE = "execute"


def _default_workers() -> int:
    return int(os.environ.get("REPRO_WORKERS", "0"))


def _default_cache_dir() -> Optional[str]:
    return os.environ.get("REPRO_CACHE_DIR") or None


def _default_engine() -> str:
    return os.environ.get("REPRO_ENGINE", "interp")


@dataclass
class ExperimentSetup:
    """One experimental context: input, caches of profiles and runs."""

    n_samples: int = DEFAULT_SAMPLES
    seed: int = DEFAULT_SEED
    bdt_update: str = DEFAULT_BDT_UPDATE
    bit_capacity: int = 16
    workers: int = field(default_factory=_default_workers)
    cache_dir: Optional[str] = field(default_factory=_default_cache_dir)
    #: execution engine ("interp" | "blocks", or REPRO_ENGINE); results
    #: are bit-identical, so it never enters memo or cache keys
    engine: str = field(default_factory=_default_engine)
    _pcm: Optional[list] = field(default=None, repr=False)
    _profiles: Dict[str, BranchProfile] = field(default_factory=dict,
                                                repr=False)
    _traces: Dict[str, List[BranchRecord]] = field(default_factory=dict,
                                                   repr=False)
    _runs: Dict[tuple, PipelineStats] = field(default_factory=dict,
                                              repr=False)
    _selections: Dict[tuple, SelectionResult] = field(default_factory=dict,
                                                      repr=False)
    _result_cache: Optional[ResultCache] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    @property
    def pcm(self) -> list:
        if self._pcm is None:
            self._pcm = speech_like(self.n_samples, self.seed)
        return self._pcm

    def workload(self, name: str) -> Workload:
        return get_workload(name)

    def profile(self, name: str) -> BranchProfile:
        """Branch profile of one benchmark (cached)."""
        if name not in self._profiles:
            wl = self.workload(name)
            stream = wl.input_stream(self.pcm)
            self._profiles[name] = BranchProfiler().profile(
                wl.program, wl.build_memory(stream))
        return self._profiles[name]

    def trace(self, name: str) -> List[BranchRecord]:
        """Branch outcome trace of one benchmark (cached)."""
        if name not in self._traces:
            wl = self.workload(name)
            stream = wl.input_stream(self.pcm)
            self._traces[name] = collect_branch_trace(
                wl.program, wl.build_memory(stream))
        return self._traces[name]

    def accuracy(self, name: str, predictor_spec: str,
                 skip_pcs=None) -> PredictorAccuracy:
        """Replay a fresh predictor over the benchmark's trace."""
        return evaluate_on_trace(make_predictor(predictor_spec),
                                 self.trace(name), skip_pcs=skip_pcs)

    # ------------------------------------------------------------------
    def selection(self, name: str,
                  bit_capacity: Optional[int] = None,
                  bdt_update: Optional[str] = None) -> SelectionResult:
        """Profile-driven BIT branch selection for one benchmark."""
        cap = bit_capacity if bit_capacity is not None else self.bit_capacity
        upd = bdt_update if bdt_update is not None else self.bdt_update
        key = (name, cap, upd)
        if key not in self._selections:
            baseline = self.accuracy(name, "bimodal-2048")
            self._selections[key] = select_branches(
                self.profile(name), baseline,
                bit_capacity=cap, bdt_update=upd)
        return self._selections[key]

    # ------------------------------------------------------------------
    # pipeline runs: in-memory memo -> disk cache -> simulate
    # ------------------------------------------------------------------
    def _spec(self, name: str, predictor_spec: str, with_asbr: bool,
              bit_capacity: Optional[int],
              bdt_update: Optional[str]) -> RunSpec:
        cap = bit_capacity if bit_capacity is not None else self.bit_capacity
        upd = bdt_update if bdt_update is not None else self.bdt_update
        return RunSpec(benchmark=name, n_samples=self.n_samples,
                       seed=self.seed, predictor_spec=predictor_spec,
                       with_asbr=with_asbr, bit_capacity=cap,
                       bdt_update=upd, engine=self.engine)

    @staticmethod
    def _memo_key(spec: RunSpec) -> tuple:
        return (spec.benchmark, spec.predictor_spec, spec.with_asbr,
                spec.bit_capacity, spec.bdt_update)

    def _canonical_input(self) -> bool:
        """True unless ``_pcm`` was hand-replaced with something other
        than the canonical ``speech_like(n_samples, seed)`` signal —
        RunSpecs identify the input by that pair, so the disk cache and
        worker pool are bypassed for non-canonical inputs."""
        return (self._pcm is None
                or self._pcm == speech_like(self.n_samples, self.seed))

    def result_cache(self) -> Optional[ResultCache]:
        """The on-disk cache, if ``cache_dir`` is configured."""
        if self.cache_dir is None:
            return None
        if self._result_cache is None:
            self._result_cache = ResultCache(self.cache_dir)
        return self._result_cache

    def prefetch(self, configs) -> None:
        """Warm the run memo for many configurations at once.

        ``configs`` is an iterable of ``(name, predictor_spec,
        with_asbr)`` or ``(name, predictor_spec, with_asbr,
        bit_capacity, bdt_update)`` tuples — exactly the arguments the
        driver will later pass to :meth:`run`.  Distinct uncached
        configurations are simulated through :func:`repro.runner.
        run_sweep`, on ``self.workers`` processes when configured.
        """
        if not self._canonical_input():
            return                       # .run() will compute inline
        specs = []
        for cfg in configs:
            name, predictor_spec, with_asbr = cfg[0], cfg[1], cfg[2]
            cap = cfg[3] if len(cfg) > 3 else None
            upd = cfg[4] if len(cfg) > 4 else None
            spec = self._spec(name, predictor_spec, with_asbr, cap, upd)
            if self._memo_key(spec) not in self._runs:
                specs.append(spec)
        if not specs:
            return
        stats_list = run_sweep(specs, workers=self.workers,
                               cache=self.result_cache())
        for spec, stats in zip(specs, stats_list):
            self._runs[self._memo_key(spec)] = stats

    def run(self, name: str, predictor_spec: str,
            with_asbr: bool = False,
            bit_capacity: Optional[int] = None,
            bdt_update: Optional[str] = None) -> PipelineStats:
        """Cycle-accurate run of one configuration (cached)."""
        spec = self._spec(name, predictor_spec, with_asbr,
                          bit_capacity, bdt_update)
        key = self._memo_key(spec)
        if key in self._runs:
            return self._runs[key]

        cache = self.result_cache()
        canonical = self._canonical_input()
        disk_key = None
        if cache is not None and canonical:
            disk_key = key_for_spec(spec)
            hit = cache.get(disk_key)
            if hit is not None:
                self._runs[key] = hit
                return hit

        # inline compute, sharing this setup's memoised selection
        wl = self.workload(name)
        asbr = None
        if with_asbr:
            sel = self.selection(name, spec.bit_capacity, spec.bdt_update)
            asbr = ASBRUnit.from_branch_infos(
                sel.infos, capacity=spec.bit_capacity,
                bdt_update=spec.bdt_update)
        result = wl.run_pipeline(self.pcm,
                                 predictor=make_predictor(predictor_spec),
                                 asbr=asbr, engine=self.engine)
        expected = wl.golden_output(self.pcm)
        if result.outputs != expected:
            raise AssertionError(
                "%s produced wrong output under %s (asbr=%s)"
                % (name, predictor_spec, with_asbr))
        self._runs[key] = result.stats
        if disk_key is not None:
            cache.put(disk_key, result.stats, describe=repr(spec))
        return result.stats


_DEFAULT: Optional[ExperimentSetup] = None


def default_setup() -> ExperimentSetup:
    """Process-wide shared setup (so benches reuse cached runs)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ExperimentSetup()
    return _DEFAULT


# ----------------------------------------------------------------------
# table rendering
# ----------------------------------------------------------------------
def render_table(headers: List[str], rows: List[List[str]],
                 title: str = "") -> str:
    """Plain-text aligned table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    fmt = "  ".join("%%-%ds" % w for w in widths)
    lines.append(fmt % tuple(headers))
    lines.append(fmt % tuple("-" * w for w in widths))
    for row in rows:
        lines.append(fmt % tuple(row))
    return "\n".join(lines)
