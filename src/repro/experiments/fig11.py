"""Figure 11 — application-specific branch resolution results.

For each benchmark: profile, select the BIT branch set, then run the
pipeline with ASBR folding plus each auxiliary predictor the paper
evaluates:

* ``not-taken`` — ASBR with no predictor at all;
* ``bi-512``    — 512-counter bimodal with the BTB quartered (512);
* ``bi-256``    — 256-counter bimodal with the BTB quartered (512).

Improvements are reported exactly as in the paper: the ``not-taken``
row against Figure 6's not-taken baseline, and the ``bi-*`` rows
against Figure 6's 2048-entry bimodal baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.experiments import paper_data
from repro.experiments.common import (
    BENCHMARKS,
    ExperimentSetup,
    default_setup,
    render_table,
)

#: auxiliary predictor name -> spec (BTB quartered: 2048/4 = 512)
AUX_PREDICTORS = {
    "not-taken": "not-taken",
    "bi-512": "bimodal-512-512",
    "bi-256": "bimodal-256-512",
}

#: which Figure 6 baseline each row's improvement is computed against
BASELINE_FOR = {
    "not-taken": "not-taken",
    "bi-512": "bimodal-2048",
    "bi-256": "bimodal-2048",
}


@dataclass
class Fig11Row:
    benchmark: str
    aux_predictor: str
    cycles: int
    baseline_cycles: int
    folds: int
    selected_branches: int

    @property
    def improvement(self) -> float:
        if not self.baseline_cycles:
            return 0.0
        return 1.0 - self.cycles / self.baseline_cycles


def run(setup: Optional[ExperimentSetup] = None) -> List[Fig11Row]:
    setup = setup if setup is not None else default_setup()
    setup.prefetch(
        [(bench, spec, True)
         for bench in BENCHMARKS for spec in AUX_PREDICTORS.values()]
        + [(bench, BASELINE_FOR[aux], False)
           for bench in BENCHMARKS for aux in AUX_PREDICTORS])
    rows = []
    for bench in BENCHMARKS:
        selection = setup.selection(bench)
        for aux, spec in AUX_PREDICTORS.items():
            stats = setup.run(bench, spec, with_asbr=True)
            baseline = setup.run(bench, BASELINE_FOR[aux], with_asbr=False)
            rows.append(Fig11Row(
                benchmark=bench, aux_predictor=aux,
                cycles=stats.cycles, baseline_cycles=baseline.cycles,
                folds=0,  # folds live in the ASBR unit; see selection
                selected_branches=len(selection.selected)))
    return rows


def render(rows: List[Fig11Row]) -> str:
    headers = ["benchmark", "aux pred", "cycles", "impr",
               "paper cycles", "paper impr", "BIT branches (paper)"]
    by_key: Dict[tuple, Fig11Row] = {(r.benchmark, r.aux_predictor): r
                                     for r in rows}
    cells = []
    for bench in BENCHMARKS:
        for aux in AUX_PREDICTORS:
            r = by_key[(bench, aux)]
            p_cyc, p_impr = paper_data.FIG11[bench][aux]
            cells.append([paper_data.DISPLAY[bench], aux,
                          "{:,}".format(r.cycles),
                          "%.0f%%" % (100 * r.improvement),
                          "{:,}".format(p_cyc),
                          "%.0f%%" % (100 * p_impr),
                          "%d (%d)" % (r.selected_branches,
                                       paper_data.SELECTED_COUNTS[bench])])
    return render_table(
        headers, cells,
        "Figure 11: ASBR results (measured vs paper; improvements vs the "
        "matching Figure 6 baseline)")


def main(setup: Optional[ExperimentSetup] = None) -> str:
    text = render(run(setup))
    print(text)
    return text


if __name__ == "__main__":
    main()
