"""Instruction specification table.

Every instruction in the architecture is described by an
:class:`InstrSpec` row: its binary format, encoding numbers, assembly
operand syntax, and semantic class.  The assembler, disassembler, encoder
and both simulators are all driven by this single table.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.conditions import Condition


class Kind(enum.Enum):
    """Semantic class of an instruction (drives operand/hazard handling)."""

    ALU_RRR = "alu_rrr"      # rd = rs OP rt
    SHIFT_I = "shift_i"      # rd = rs OP shamt
    ALU_RRI = "alu_rri"      # rt = rs OP imm
    LUI = "lui"              # rt = imm << 16
    LOAD = "load"            # rt = MEM[rs + imm]
    STORE = "store"          # MEM[rs + imm] = rt
    BRANCH_CMP = "branch_cmp"  # if (rs ? rt) goto label      (beq/bne)
    BRANCH_Z = "branch_z"    # if (rs ? 0) goto label
    JUMP = "jump"            # j target
    JAL = "jal"              # r31 = PC+4; j target
    JR = "jr"                # PC = rs
    JALR = "jalr"            # rd = PC+4; PC = rs
    HALT = "halt"            # stop simulation
    CTL = "ctl"              # control-register write (ASBR BIT bank select)


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one instruction mnemonic."""

    name: str
    fmt: str                       # 'R', 'I', or 'J'
    opcode: int                    # 6-bit major opcode
    funct: int                     # 6-bit function code (R-format only)
    kind: Kind
    syntax: str                    # assembly operand pattern
    alu_op: Optional[str] = None   # base op for repro.isa.alu.alu_execute
    condition: Optional[Condition] = None  # zero-compare branches
    signed_imm: bool = True        # sign-extend the 16-bit immediate?


def _r(name, funct, kind, syntax, alu_op=None):
    return InstrSpec(name, "R", 0x00, funct, kind, syntax, alu_op=alu_op)


def _i(name, opcode, kind, syntax, alu_op=None, condition=None, signed_imm=True):
    return InstrSpec(
        name, "I", opcode, 0, kind, syntax,
        alu_op=alu_op, condition=condition, signed_imm=signed_imm,
    )


_SPEC_LIST = [
    # --- R-format ALU -----------------------------------------------------
    _r("sll", 0x00, Kind.SHIFT_I, "rd,rs,shamt", "sll"),
    _r("srl", 0x02, Kind.SHIFT_I, "rd,rs,shamt", "srl"),
    _r("sra", 0x03, Kind.SHIFT_I, "rd,rs,shamt", "sra"),
    _r("sllv", 0x04, Kind.ALU_RRR, "rd,rs,rt", "sll"),
    _r("srlv", 0x06, Kind.ALU_RRR, "rd,rs,rt", "srl"),
    _r("srav", 0x07, Kind.ALU_RRR, "rd,rs,rt", "sra"),
    _r("jr", 0x08, Kind.JR, "rs"),
    _r("jalr", 0x09, Kind.JALR, "rd,rs"),
    _r("halt", 0x0D, Kind.HALT, ""),
    _r("mul", 0x18, Kind.ALU_RRR, "rd,rs,rt", "mul"),
    _r("div", 0x1A, Kind.ALU_RRR, "rd,rs,rt", "div"),
    _r("rem", 0x1B, Kind.ALU_RRR, "rd,rs,rt", "rem"),
    _r("add", 0x20, Kind.ALU_RRR, "rd,rs,rt", "add"),
    _r("addu", 0x21, Kind.ALU_RRR, "rd,rs,rt", "addu"),
    _r("sub", 0x22, Kind.ALU_RRR, "rd,rs,rt", "sub"),
    _r("subu", 0x23, Kind.ALU_RRR, "rd,rs,rt", "subu"),
    _r("and", 0x24, Kind.ALU_RRR, "rd,rs,rt", "and"),
    _r("or", 0x25, Kind.ALU_RRR, "rd,rs,rt", "or"),
    _r("xor", 0x26, Kind.ALU_RRR, "rd,rs,rt", "xor"),
    _r("nor", 0x27, Kind.ALU_RRR, "rd,rs,rt", "nor"),
    _r("slt", 0x2A, Kind.ALU_RRR, "rd,rs,rt", "slt"),
    _r("sltu", 0x2B, Kind.ALU_RRR, "rd,rs,rt", "sltu"),
    # --- branches ---------------------------------------------------------
    _i("beq", 0x04, Kind.BRANCH_CMP, "rs,rt,label"),
    _i("bne", 0x05, Kind.BRANCH_CMP, "rs,rt,label"),
    _i("blez", 0x06, Kind.BRANCH_Z, "rs,label", condition=Condition.LEZ),
    _i("bgtz", 0x07, Kind.BRANCH_Z, "rs,label", condition=Condition.GTZ),
    _i("bltz", 0x10, Kind.BRANCH_Z, "rs,label", condition=Condition.LTZ),
    _i("bgez", 0x11, Kind.BRANCH_Z, "rs,label", condition=Condition.GEZ),
    _i("beqz", 0x12, Kind.BRANCH_Z, "rs,label", condition=Condition.EQZ),
    _i("bnez", 0x13, Kind.BRANCH_Z, "rs,label", condition=Condition.NEZ),
    # --- immediate ALU ----------------------------------------------------
    _i("addi", 0x08, Kind.ALU_RRI, "rt,rs,imm", "add"),
    _i("addiu", 0x09, Kind.ALU_RRI, "rt,rs,imm", "addu"),
    _i("slti", 0x0A, Kind.ALU_RRI, "rt,rs,imm", "slt"),
    _i("sltiu", 0x0B, Kind.ALU_RRI, "rt,rs,imm", "sltu"),
    _i("andi", 0x0C, Kind.ALU_RRI, "rt,rs,imm", "and", signed_imm=False),
    _i("ori", 0x0D, Kind.ALU_RRI, "rt,rs,imm", "or", signed_imm=False),
    _i("xori", 0x0E, Kind.ALU_RRI, "rt,rs,imm", "xor", signed_imm=False),
    _i("lui", 0x0F, Kind.LUI, "rt,imm", "lui", signed_imm=False),
    # --- memory -----------------------------------------------------------
    _i("lb", 0x20, Kind.LOAD, "rt,imm(rs)"),
    _i("lh", 0x21, Kind.LOAD, "rt,imm(rs)"),
    _i("lw", 0x23, Kind.LOAD, "rt,imm(rs)"),
    _i("lbu", 0x24, Kind.LOAD, "rt,imm(rs)"),
    _i("lhu", 0x25, Kind.LOAD, "rt,imm(rs)"),
    _i("sb", 0x28, Kind.STORE, "rt,imm(rs)"),
    _i("sh", 0x29, Kind.STORE, "rt,imm(rs)"),
    _i("sw", 0x2B, Kind.STORE, "rt,imm(rs)"),
    # --- system -----------------------------------------------------------
    _i("ctlw", 0x3E, Kind.CTL, "imm", signed_imm=False),
    # --- jumps ------------------------------------------------------------
    InstrSpec("j", "J", 0x02, 0, Kind.JUMP, "label"),
    InstrSpec("jal", "J", 0x03, 0, Kind.JAL, "label"),
]

#: mnemonic -> spec
SPECS: Dict[str, InstrSpec] = {s.name: s for s in _SPEC_LIST}

#: (opcode, funct) -> spec, for binary decoding
DECODE_TABLE: Dict[tuple, InstrSpec] = {}
for _s in _SPEC_LIST:
    _key = (_s.opcode, _s.funct if _s.fmt == "R" else 0)
    if _key in DECODE_TABLE:
        raise AssertionError("duplicate encoding for %s" % _s.name)
    DECODE_TABLE[_key] = _s

#: Branch kinds, used all over the pipeline and profiler.
BRANCH_KINDS = (Kind.BRANCH_CMP, Kind.BRANCH_Z)

#: Kinds that redirect the PC.
CONTROL_KINDS = BRANCH_KINDS + (Kind.JUMP, Kind.JAL, Kind.JR, Kind.JALR)


def spec_for(mnemonic: str) -> InstrSpec:
    """Look up the spec for a mnemonic; raises KeyError if unknown."""
    if mnemonic not in SPECS:
        raise KeyError("unknown instruction mnemonic %r" % mnemonic)
    return SPECS[mnemonic]
