"""Pure 32-bit integer ALU semantics shared by both simulators.

Keeping value computation in one place guarantees that the functional
(golden) simulator and the pipelined simulator can never disagree on what
an instruction *computes* — only on how many cycles it takes.
"""

from __future__ import annotations

MASK32 = 0xFFFFFFFF


def to_signed(value: int) -> int:
    """Interpret a 32-bit pattern as a signed integer."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value: int) -> int:
    """Truncate an integer to its 32-bit pattern."""
    return value & MASK32


def _sra(value: int, shamt: int) -> int:
    return to_unsigned(to_signed(value) >> shamt)


def _div_trunc(a: int, b: int) -> int:
    """Signed division truncating toward zero (C semantics)."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _rem_trunc(a: int, b: int) -> int:
    """Signed remainder with C semantics: sign follows the dividend."""
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def _op_div(a: int, b: int) -> int:
    if to_signed(b) == 0:
        return 0  # embedded cores commonly define div-by-zero as 0
    return to_unsigned(_div_trunc(to_signed(a), to_signed(b)))


def _op_rem(a: int, b: int) -> int:
    if to_signed(b) == 0:
        return 0
    return to_unsigned(_rem_trunc(to_signed(a), to_signed(b)))


#: op name -> implementation; dict dispatch keeps the simulators' hot
#: path a single lookup instead of a string-compare chain
_ALU_OPS = {
    "add": lambda a, b: (a + b) & MASK32,
    "addu": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "subu": lambda a, b: (a - b) & MASK32,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "nor": lambda a, b: (~(a | b)) & MASK32,
    "slt": lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    "sltu": lambda a, b: 1 if (a & MASK32) < (b & MASK32) else 0,
    "sll": lambda a, b: (a << (b & 31)) & MASK32,
    "srl": lambda a, b: (a & MASK32) >> (b & 31),
    "sra": lambda a, b: _sra(a, b & 31),
    "mul": lambda a, b: (to_signed(a) * to_signed(b)) & MASK32,
    "div": _op_div,
    "rem": _op_rem,
    "lui": lambda a, b: (b << 16) & MASK32,
}


def alu_fn(op: str):
    """The raw callable behind :func:`alu_execute` for ``op``.

    The simulators' decoded-dispatch tables resolve the operation once
    at construction and then call the returned function directly, so the
    per-cycle cost is a plain call instead of a dict probe.
    """
    try:
        return _ALU_OPS[op]
    except KeyError:
        raise ValueError("unknown ALU op %r" % op) from None


#: condition symbol -> test on an *unsigned* 32-bit pattern; equivalent
#: to the signed comparisons in ``repro.sim.functional._eval_zero``
#: (bit 31 set <=> negative), but with no sign conversion per call.
ZERO_TESTS_U = {
    "==0": lambda v: v == 0,
    "!=0": lambda v: v != 0,
    "<0": lambda v: v >= 0x80000000,
    "<=0": lambda v: v == 0 or v >= 0x80000000,
    ">0": lambda v: 0 < v < 0x80000000,
    ">=0": lambda v: v < 0x80000000,
}


def _fix_lb(v: int) -> int:
    v &= 0xFF
    return (v - 0x100) & MASK32 if v & 0x80 else v


def _fix_lh(v: int) -> int:
    v &= 0xFFFF
    return (v - 0x10000) & MASK32 if v & 0x8000 else v


#: load mnemonic -> width-correction callable (same results as
#: :func:`load_value`, pre-resolved so the hot loop skips the string
#: comparisons).
LOAD_FIX = {
    "lb": _fix_lb,
    "lbu": lambda v: v & 0xFF,
    "lh": _fix_lh,
    "lhu": lambda v: v & 0xFFFF,
    "lw": lambda v: v & MASK32,
}


def alu_execute(op: str, a: int, b: int) -> int:
    """Execute an ALU operation on two 32-bit operands.

    ``a``/``b`` are unsigned 32-bit patterns; the result is an unsigned
    32-bit pattern.  ``op`` is the base operation name (shift variants and
    immediate forms are normalised by the caller — e.g. ``addi`` executes
    as ``add`` with ``b`` = sign-extended immediate).
    """
    fn = _ALU_OPS.get(op)
    if fn is None:
        raise ValueError("unknown ALU op %r" % op)
    return fn(a, b)


def sign_extend_16(imm: int) -> int:
    """Sign-extend a 16-bit immediate to a 32-bit pattern."""
    imm &= 0xFFFF
    return imm - 0x10000 if imm & 0x8000 else imm


def load_value(op: str, word_or_bytes: int) -> int:
    """Finalize a loaded value according to the load width/signedness.

    ``word_or_bytes`` is the raw (zero-extended) value read from memory at
    the access width; sign extension is applied here for ``lb``/``lh``.
    """
    if op == "lb":
        v = word_or_bytes & 0xFF
        return to_unsigned(v - 0x100 if v & 0x80 else v)
    if op == "lbu":
        return word_or_bytes & 0xFF
    if op == "lh":
        v = word_or_bytes & 0xFFFF
        return to_unsigned(v - 0x10000 if v & 0x8000 else v)
    if op == "lhu":
        return word_or_bytes & 0xFFFF
    if op == "lw":
        return word_or_bytes & MASK32
    raise ValueError("not a load op: %r" % op)
