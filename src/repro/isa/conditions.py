"""Zero-comparison branch conditions.

The paper's architecture supports "conditional branches supporting all
possible zero comparisons" (Section 8).  These six predicates are exactly
the per-register *direction bits* stored in the ASBR Branch Direction
Table (Figure 8 shows a BDT with the ``!=0`` and ``<=0`` subset).
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.isa.alu import to_signed


class Condition(enum.Enum):
    """A predicate comparing one register value against zero."""

    EQZ = "==0"
    NEZ = "!=0"
    LTZ = "<0"
    LEZ = "<=0"
    GTZ = ">0"
    GEZ = ">=0"

    @property
    def negation(self) -> "Condition":
        return _NEGATION[self]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_NEGATION = {
    Condition.EQZ: Condition.NEZ,
    Condition.NEZ: Condition.EQZ,
    Condition.LTZ: Condition.GEZ,
    Condition.GEZ: Condition.LTZ,
    Condition.LEZ: Condition.GTZ,
    Condition.GTZ: Condition.LEZ,
}


def evaluate_condition(cond: Condition, value: int) -> bool:
    """Evaluate ``cond`` on a 32-bit register value (signed comparison)."""
    s = to_signed(value)
    if cond is Condition.EQZ:
        return s == 0
    if cond is Condition.NEZ:
        return s != 0
    if cond is Condition.LTZ:
        return s < 0
    if cond is Condition.LEZ:
        return s <= 0
    if cond is Condition.GTZ:
        return s > 0
    return s >= 0


def all_condition_bits(value: int) -> Dict[Condition, bool]:
    """All six direction bits for a register value.

    This is what the BDT's early-condition-evaluation hardware computes in
    one shot when a register value is produced ("a few zero comparisons",
    Section 4).
    """
    return {cond: evaluate_condition(cond, value) for cond in Condition}
