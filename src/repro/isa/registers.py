"""Architectural registers and the register file.

The architecture has 32 general-purpose 32-bit registers.  Register 0 is
hard-wired to zero, as in MIPS.  Both numeric names (``r4``) and the MIPS
conventional aliases (``$a0``, ``a0``) are accepted by the assembler.
"""

from __future__ import annotations

from typing import Dict, List

NUM_REGS = 32

#: Canonical numeric names: r0 .. r31.
REG_NAMES: List[str] = ["r%d" % i for i in range(NUM_REGS)]

#: MIPS software-convention aliases, in register-number order.
_CONVENTIONAL = [
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
]

#: Every accepted spelling -> register number.
REG_ALIASES: Dict[str, int] = {}
for _i in range(NUM_REGS):
    REG_ALIASES["r%d" % _i] = _i
    REG_ALIASES["$%d" % _i] = _i
    REG_ALIASES[_CONVENTIONAL[_i]] = _i
    REG_ALIASES["$" + _CONVENTIONAL[_i]] = _i


def reg_num(name: str) -> int:
    """Resolve a register spelling to its number.

    Raises :class:`KeyError` with a helpful message for unknown names.
    """
    key = name.strip().lower()
    if key not in REG_ALIASES:
        raise KeyError("unknown register %r" % name)
    return REG_ALIASES[key]


def reg_name(num: int) -> str:
    """Canonical (numeric) name for a register number."""
    if not 0 <= num < NUM_REGS:
        raise ValueError("register number out of range: %d" % num)
    return REG_NAMES[num]


class RegisterFile:
    """A 32-entry register file with a hard-wired zero register.

    Values are stored as unsigned 32-bit integers; use
    :func:`repro.isa.alu.to_signed` for signed interpretation.
    """

    __slots__ = ("_regs",)

    def __init__(self) -> None:
        self._regs = [0] * NUM_REGS

    def read(self, num: int) -> int:
        return self._regs[num]

    def write(self, num: int, value: int) -> None:
        if num != 0:
            self._regs[num] = value & 0xFFFFFFFF

    def __getitem__(self, num: int) -> int:
        return self._regs[num]

    def __setitem__(self, num: int, value: int) -> None:
        self.write(num, value)

    def snapshot(self) -> List[int]:
        """Copy of all register values (for differential testing)."""
        return list(self._regs)

    def load(self, values) -> None:
        """Restore register values from :meth:`snapshot` output.

        Mutates the existing storage in place so that fast paths holding
        a reference to :attr:`raw` stay coherent.
        """
        if len(values) != NUM_REGS:
            raise ValueError("expected %d values" % NUM_REGS)
        self._regs[:] = [v & 0xFFFFFFFF for v in values]
        self._regs[0] = 0

    @property
    def raw(self) -> List[int]:
        """The live backing list (simulator fast paths only).

        Callers that write through this list must mask values to 32 bits
        and never write index 0; the list identity is stable for the
        lifetime of the register file.
        """
        return self._regs

    def __repr__(self) -> str:
        nz = ", ".join(
            "%s=%d" % (REG_NAMES[i], v) for i, v in enumerate(self._regs) if v
        )
        return "RegisterFile(%s)" % nz
