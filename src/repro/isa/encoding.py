"""32-bit binary instruction encoding.

Classic MIPS-style field layout:

* R-format: ``opcode[31:26] rs[25:21] rt[20:16] rd[15:11] shamt[10:6] funct[5:0]``
* I-format: ``opcode[31:26] rs[25:21] rt[20:16] imm[15:0]``
* J-format: ``opcode[31:26] target[25:0]``

The encoding exists so programs are genuine binary images: the fetch
stage of the pipeline simulator reads words from the instruction cache,
and the ASBR Branch Identification Table stores the *encoded* target and
fall-through instructions (BTI/BFI) exactly as the paper's hardware would.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import DECODE_TABLE, Kind, spec_for


class EncodingError(ValueError):
    """Raised when a field does not fit its encoding slot."""


def _check(value: int, bits: int, what: str, signed: bool = False) -> int:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        if not lo <= value <= hi:
            raise EncodingError("%s=%d does not fit signed %d bits"
                                % (what, value, bits))
        return value & ((1 << bits) - 1)
    if not 0 <= value < (1 << bits):
        raise EncodingError("%s=%d does not fit unsigned %d bits"
                            % (what, value, bits))
    return value


def encode(instr: Instruction) -> int:
    """Encode an instruction into its 32-bit word."""
    spec = instr.spec
    if spec.fmt == "R":
        word = (0x00 << 26)
        word |= _check(instr.rs, 5, "rs") << 21
        word |= _check(instr.rt, 5, "rt") << 16
        word |= _check(instr.rd, 5, "rd") << 11
        word |= _check(instr.shamt, 5, "shamt") << 6
        word |= spec.funct
        return word
    if spec.fmt == "I":
        word = spec.opcode << 26
        word |= _check(instr.rs, 5, "rs") << 21
        word |= _check(instr.rt, 5, "rt") << 16
        imm = _check(instr.imm, 16, "imm", signed=spec.signed_imm)
        word |= imm
        return word
    # J-format
    word = spec.opcode << 26
    word |= _check(instr.target, 26, "target")
    return word


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back into an :class:`Instruction`.

    Raises :class:`EncodingError` on an unknown opcode/funct combination.
    """
    word &= 0xFFFFFFFF
    opcode = (word >> 26) & 0x3F
    funct = word & 0x3F if opcode == 0x00 else 0
    spec = DECODE_TABLE.get((opcode, funct))
    if spec is None:
        raise EncodingError("cannot decode word 0x%08x "
                            "(opcode=0x%02x funct=0x%02x)"
                            % (word, opcode, funct))
    rs = (word >> 21) & 0x1F
    rt = (word >> 16) & 0x1F
    if spec.fmt == "R":
        rd = (word >> 11) & 0x1F
        shamt = (word >> 6) & 0x1F
        return Instruction(spec.name, rd=rd, rs=rs, rt=rt, shamt=shamt)
    if spec.fmt == "I":
        imm = word & 0xFFFF
        if spec.signed_imm and imm & 0x8000:
            imm -= 0x10000
        return Instruction(spec.name, rs=rs, rt=rt, imm=imm)
    return Instruction(spec.name, target=word & 0x03FFFFFF)


def encode_program(instrs) -> list:
    """Encode a sequence of instructions into a list of 32-bit words."""
    return [encode(i) for i in instrs]


def decode_program(words) -> list:
    """Decode a sequence of 32-bit words into instructions."""
    return [decode(w) for w in words]
