"""MIPS-like 32-bit RISC instruction set architecture.

This package defines the instruction set simulated by :mod:`repro.sim` and
targeted by the assembler in :mod:`repro.asm`.  It mirrors the architecture
assumed by the paper: a classic 32-register RISC with conditional branches
that compare a register against zero ("all possible zero comparisons"),
plus two-register equality branches, loads/stores, jumps, and a small set
of system instructions (``halt``, ``ctlw`` for BIT bank switching).

Public surface:

* :class:`~repro.isa.instruction.Instruction` — a decoded instruction.
* :data:`~repro.isa.opcodes.SPECS` — the instruction specification table.
* :func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`
  — 32-bit binary encoding round-trip.
* :class:`~repro.isa.conditions.Condition` — zero-comparison predicates
  used by branches and by the ASBR Branch Direction Table.
"""

from repro.isa.registers import (
    NUM_REGS,
    REG_ALIASES,
    REG_NAMES,
    RegisterFile,
    reg_name,
    reg_num,
)
from repro.isa.conditions import Condition, evaluate_condition, all_condition_bits
from repro.isa.opcodes import InstrSpec, Kind, SPECS, spec_for
from repro.isa.instruction import Instruction
from repro.isa.alu import (
    MASK32,
    to_signed,
    to_unsigned,
    alu_execute,
)
from repro.isa.encoding import encode, decode, EncodingError

__all__ = [
    "NUM_REGS",
    "REG_ALIASES",
    "REG_NAMES",
    "RegisterFile",
    "reg_name",
    "reg_num",
    "Condition",
    "evaluate_condition",
    "all_condition_bits",
    "InstrSpec",
    "Kind",
    "SPECS",
    "spec_for",
    "Instruction",
    "MASK32",
    "to_signed",
    "to_unsigned",
    "alu_execute",
    "encode",
    "decode",
    "EncodingError",
]
