"""The :class:`Instruction` object used throughout the toolchain.

An ``Instruction`` is a *decoded* instruction: mnemonic plus register
numbers, immediate, shift amount and jump target.  The assembler builds
them from text; :func:`repro.isa.encoding.decode` builds them from 32-bit
words.  Both simulators execute them directly (no re-decoding in the hot
loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.conditions import Condition
from repro.isa.opcodes import (
    BRANCH_KINDS,
    CONTROL_KINDS,
    InstrSpec,
    Kind,
    spec_for,
)
from repro.isa.registers import reg_name


@dataclass
class Instruction:
    """One decoded machine instruction.

    Fields not used by the instruction's format are left at 0.  For
    branches, ``imm`` is the signed word offset relative to PC+4; for
    jumps, ``target`` is the raw 26-bit word index.  Use
    :meth:`branch_target` / :meth:`jump_target` with the instruction's PC
    to obtain absolute byte addresses.
    """

    op: str
    rd: int = 0
    rs: int = 0
    rt: int = 0
    shamt: int = 0
    imm: int = 0          # signed 16-bit (or unsigned, per spec.signed_imm)
    target: int = 0       # raw 26-bit jump field (word index)
    spec: InstrSpec = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # classification and register usage are precomputed once: both
        # simulators consult them on every cycle of every instruction
        spec = spec_for(self.op)
        self.spec = spec
        k = spec.kind
        self._is_branch = k in BRANCH_KINDS
        self._is_control = k in CONTROL_KINDS
        self._is_load = k is Kind.LOAD
        self._is_store = k is Kind.STORE
        if k in (Kind.ALU_RRR, Kind.SHIFT_I, Kind.JALR):
            self._dest = self.rd
        elif k in (Kind.ALU_RRI, Kind.LUI, Kind.LOAD):
            self._dest = self.rt
        elif k is Kind.JAL:
            self._dest = 31
        else:
            self._dest = None
        if k in (Kind.ALU_RRR, Kind.STORE, Kind.BRANCH_CMP):
            self._srcs = [self.rs, self.rt]
        elif k in (Kind.SHIFT_I, Kind.ALU_RRI, Kind.LOAD, Kind.BRANCH_Z,
                   Kind.JR, Kind.JALR):
            self._srcs = [self.rs]
        else:
            self._srcs = []

    # ------------------------------------------------------------------
    # classification
    # ------------------------------------------------------------------
    @property
    def kind(self) -> Kind:
        return self.spec.kind

    @property
    def is_branch(self) -> bool:
        """Conditional branch (beq/bne/b<cond>z)."""
        return self._is_branch

    @property
    def is_control(self) -> bool:
        """Anything that can redirect the PC."""
        return self._is_control

    @property
    def is_load(self) -> bool:
        return self._is_load

    @property
    def is_store(self) -> bool:
        return self._is_store

    # ------------------------------------------------------------------
    # register usage (drives hazard detection and def-use analysis)
    # ------------------------------------------------------------------
    @property
    def dest_reg(self) -> Optional[int]:
        """Destination register number, or None if no register is written.

        A destination of r0 is reported as-is; writes to r0 are discarded
        by the register file, but the pipeline still tracks them.
        """
        return self._dest

    @property
    def src_regs(self) -> List[int]:
        """Register numbers read by this instruction (may repeat)."""
        return self._srcs

    # ------------------------------------------------------------------
    # branch predicates (the raw material of ASBR)
    # ------------------------------------------------------------------
    @property
    def zero_condition(self) -> Optional[Tuple[Condition, int]]:
        """``(condition, register)`` if this branch is a zero comparison.

        ``b<cond>z`` branches are inherently zero comparisons; ``beq``/
        ``bne`` qualify when one operand is r0.  Two-register compares
        return None — they cannot be captured by the per-register BDT and
        are therefore never ASBR-foldable.
        """
        k = self.spec.kind
        if k is Kind.BRANCH_Z:
            assert self.spec.condition is not None
            return (self.spec.condition, self.rs)
        if k is Kind.BRANCH_CMP:
            cond = Condition.EQZ if self.op == "beq" else Condition.NEZ
            if self.rt == 0:
                return (cond, self.rs)
            if self.rs == 0:
                return (cond, self.rt)
        return None

    # ------------------------------------------------------------------
    # control-flow targets
    # ------------------------------------------------------------------
    def branch_target(self, pc: int) -> int:
        """Absolute taken-target address of a branch at address ``pc``."""
        return (pc + 4 + (self.imm << 2)) & 0xFFFFFFFF

    def jump_target(self, pc: int) -> int:
        """Absolute target address of a j/jal at address ``pc``."""
        return ((pc + 4) & 0xF0000000) | ((self.target << 2) & 0x0FFFFFFF)

    # ------------------------------------------------------------------
    # pretty printing
    # ------------------------------------------------------------------
    def render(self, pc: Optional[int] = None) -> str:
        """Disassembly text.  With ``pc``, control targets are absolute."""
        syn = self.spec.syntax
        if not syn:
            return self.op
        parts = []
        for tok in syn.split(","):
            tok = tok.strip()
            if tok == "rd":
                parts.append(reg_name(self.rd))
            elif tok == "rs":
                parts.append(reg_name(self.rs))
            elif tok == "rt":
                parts.append(reg_name(self.rt))
            elif tok == "shamt":
                parts.append(str(self.shamt))
            elif tok == "imm":
                parts.append(str(self.imm))
            elif tok == "imm(rs)":
                parts.append("%d(%s)" % (self.imm, reg_name(self.rs)))
            elif tok == "label":
                if pc is None:
                    parts.append("%+d" % self.imm if self.is_branch
                                 else "@%d" % self.target)
                else:
                    addr = (self.branch_target(pc) if self.is_branch
                            else self.jump_target(pc))
                    parts.append("0x%x" % addr)
            else:  # pragma: no cover - table is closed
                raise AssertionError("bad syntax token %r" % tok)
        return "%s %s" % (self.op, ", ".join(parts))

    def __str__(self) -> str:
        return self.render()


#: Canonical no-op: ``sll r0, r0, 0``.
def nop() -> Instruction:
    """A fresh architectural no-op instruction."""
    return Instruction("sll", rd=0, rs=0, shamt=0)
