"""Workload harness: assemble a codec, feed it inputs, collect outputs.

Each :class:`Workload` binds an assembly source to its memory interface
(the ``n_samples`` count plus input/output buffer labels) and to the
golden model that defines its correct output.  The harness writes the
input stream into simulator memory exactly where the program's
``.space`` reservation lives, runs either simulator, and reads the
output stream back.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.asm.assembler import assemble
from repro.asm.program import Program
from repro.memory.main_memory import MainMemory
from repro.sim.functional import FunctionalSimulator
from repro.sim.pipeline import PipelineConfig, PipelineSimulator, PipelineStats
from repro.workloads import golden, huffman

#: Capacity of the .space reservations in the assembly sources.
MAX_SAMPLES = 16384

_ASM_DIR = os.path.join(os.path.dirname(__file__), "asm")


def _to_u16(v: int) -> int:
    return v & 0xFFFF


def _from_s16(v: int) -> int:
    v &= 0xFFFF
    return v - 0x10000 if v & 0x8000 else v


@dataclass
class WorkloadResult:
    """Output stream plus the statistics of the run that produced it."""

    outputs: List[int]
    stats: Optional[PipelineStats] = None     # None for functional runs
    instructions: int = 0


class Workload:
    """One benchmark program with its I/O conventions."""

    def __init__(self, name: str, asm_file: str,
                 input_label: str, input_width: int,
                 output_label: str, output_width: int,
                 golden_fn: Callable[[Sequence[int]], List[int]],
                 prepare_input: Callable[[Sequence[int]], List[int]],
                 count_fn: Optional[Callable[[Sequence[int]], int]]
                 = None) -> None:
        self.name = name
        self.asm_file = asm_file
        self.input_label = input_label
        self.input_width = input_width       # bytes per input element
        self.output_label = output_label
        self.output_width = output_width     # bytes per output element
        self.golden_fn = golden_fn
        # maps raw PCM test stimulus to this program's input stream
        # (decoders consume the matching encoder's output)
        self.prepare_input = prepare_input
        # value of the program's n_samples word and the output length;
        # defaults to the input-stream length (codecs are 1:1), but
        # e.g. the Huffman decoder consumes a bitstream whose length
        # differs from the symbol count it produces
        self.count_fn = count_fn if count_fn is not None \
            else (lambda pcm: None)
        self._program: Optional[Program] = None

    # ------------------------------------------------------------------
    @property
    def program(self) -> Program:
        """The assembled program (cached)."""
        if self._program is None:
            path = os.path.join(_ASM_DIR, self.asm_file)
            with open(path) as f:
                self._program = assemble(f.read())
        return self._program

    # ------------------------------------------------------------------
    def build_memory(self, stream: Sequence[int],
                     count: Optional[int] = None) -> MainMemory:
        """Memory image with ``stream`` written to the input buffer.

        ``count`` overrides the program's ``n_samples`` word (defaults
        to the stream length).
        """
        if len(stream) > MAX_SAMPLES:
            raise ValueError("%d elements exceed buffer capacity %d"
                             % (len(stream), MAX_SAMPLES))
        prog = self.program
        mem = MainMemory()
        mem.load_words(prog.data.items())     # static tables first
        n = count if count is not None else len(stream)
        mem.write_word(prog.address_of("n_samples"), n)
        base = prog.address_of(self.input_label)
        width = self.input_width
        for i, v in enumerate(stream):
            mem.write(base + i * width, v & ((1 << (8 * width)) - 1), width)
        return mem

    def _count(self, pcm: Sequence[int], stream: Sequence[int]) -> int:
        """Output-element count for this stimulus."""
        n = self.count_fn(pcm)
        return n if n is not None else len(stream)

    def read_output(self, memory: MainMemory, n: int) -> List[int]:
        """Output stream of ``n`` elements, sign-corrected."""
        base = self.program.address_of(self.output_label)
        width = self.output_width
        out = []
        for i in range(n):
            raw = memory.read(base + i * width, width)
            out.append(_from_s16(raw) if width == 2 else raw)
        return out

    def golden_output(self, pcm: Sequence[int]) -> List[int]:
        """Expected output for raw PCM stimulus ``pcm``.

        Workloads with a custom ``count_fn`` have golden models that
        need the output count as well (e.g. a bitstream decoder); their
        ``golden_fn`` is called as ``golden_fn(stream, count)``.
        """
        stream = self.prepare_input(pcm)
        count = self.count_fn(pcm)
        if count is not None:
            return self.golden_fn(stream, count)
        return self.golden_fn(stream)

    # ------------------------------------------------------------------
    def run_functional(self, pcm: Sequence[int],
                       max_instructions: int = 500_000_000,
                       engine: str = "interp") -> WorkloadResult:
        stream = self.prepare_input(pcm)
        count = self._count(pcm, stream)
        sim = FunctionalSimulator(self.program,
                                  self.build_memory(stream, count),
                                  engine=engine)
        n = sim.run(max_instructions=max_instructions)
        return WorkloadResult(self.read_output(sim.memory, count),
                              instructions=n)

    def run_functional_batch(self, pcms: Sequence[Sequence[int]],
                             max_instructions: int = 500_000_000
                             ) -> List[WorkloadResult]:
        """Run N stimuli through the lockstep batch engine.

        One vectorized :func:`repro.sim.batch.run_batch` pass over all
        lanes; returns one :class:`WorkloadResult` per stimulus,
        bit-identical to N serial :meth:`run_functional` calls.  A lane
        that trapped raises the serial engine's error for that lane.
        """
        from repro.sim.batch import run_batch
        from repro.sim.functional import SimulationError
        streams = [self.prepare_input(p) for p in pcms]
        counts = [self._count(p, s) for p, s in zip(pcms, streams)]
        mems = [self.build_memory(s, c) for s, c in zip(streams, counts)]
        res = run_batch(self.program, mems,
                        max_instructions=max_instructions)
        out = []
        for lane, lr in enumerate(res.lanes):
            if lr.error is not None:
                raise SimulationError("lane %d: %s: %s"
                                      % (lane, lr.error[0], lr.error[1]))
            m = MainMemory()
            m.load_words(lr.memory.items())
            out.append(WorkloadResult(self.read_output(m, counts[lane]),
                                      instructions=lr.instructions_retired))
        return out

    def run_pipeline(self, pcm: Sequence[int], predictor=None, asbr=None,
                     config: Optional[PipelineConfig] = None,
                     trace=None, on_sim=None,
                     engine: str = "interp",
                     frontend=None) -> WorkloadResult:
        """``trace`` (a :class:`repro.telemetry.Tracer`) enables the
        pipeline's telemetry hooks for this run; None costs nothing.

        ``frontend`` (a :class:`repro.frontend.FrontendConfig` or None)
        attaches the decoupled front end for this run.

        ``on_sim`` is called with the constructed simulator before the
        run starts — the instrumentation window for layers that rebind
        instance methods (e.g. :class:`repro.faults.FaultInjector`),
        which must happen before ``run()`` captures ``tick``.
        """
        stream = self.prepare_input(pcm)
        count = self._count(pcm, stream)
        sim = PipelineSimulator(self.program,
                                self.build_memory(stream, count),
                                predictor=predictor, asbr=asbr,
                                config=config, trace=trace, engine=engine,
                                frontend=frontend)
        if on_sim is not None:
            on_sim(sim)
        stats = sim.run()
        return WorkloadResult(self.read_output(sim.memory, count),
                              stats=stats, instructions=stats.committed)

    def run_ooo(self, pcm: Sequence[int], predictor=None, asbr=None,
                config=None, trace=None, on_sim=None,
                frontend=None) -> WorkloadResult:
        """Run on the out-of-order backend (:mod:`repro.sim.ooo`).

        Same contract as :meth:`run_pipeline`; ``config`` is an
        :class:`repro.sim.ooo.OoOConfig` and ``frontend`` a
        :class:`repro.frontend.FrontendConfig` — the decoupled front
        end attaches to the OoO machine through the same interface.
        """
        from repro.sim.ooo import OoOSimulator
        stream = self.prepare_input(pcm)
        count = self._count(pcm, stream)
        sim = OoOSimulator(self.program,
                           self.build_memory(stream, count),
                           predictor=predictor, asbr=asbr,
                           config=config, trace=trace,
                           frontend=frontend)
        if on_sim is not None:
            on_sim(sim)
        stats = sim.run()
        return WorkloadResult(self.read_output(sim.memory, count),
                              stats=stats, instructions=stats.committed)

    def input_stream(self, pcm: Sequence[int]) -> List[int]:
        """The program-level input stream for raw PCM stimulus."""
        return self.prepare_input(pcm)

    def with_program(self, program: Program,
                     suffix: str = "-sched") -> "Workload":
        """A clone running a transformed program (e.g. after scheduling).

        The transformed program must preserve labels and data layout,
        which :func:`repro.sched.schedule_program` guarantees.
        """
        clone = Workload(self.name + suffix, self.asm_file,
                         input_label=self.input_label,
                         input_width=self.input_width,
                         output_label=self.output_label,
                         output_width=self.output_width,
                         golden_fn=self.golden_fn,
                         prepare_input=self.prepare_input)
        clone.count_fn = self.count_fn
        clone._program = program
        return clone


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def _adpcm_codes(pcm: Sequence[int]) -> List[int]:
    return golden.adpcm_encode(pcm)[0]


def _g721_codes(pcm: Sequence[int]) -> List[int]:
    return golden.g721_encode(pcm)[0]


_REGISTRY = {
    "adpcm_enc": lambda: Workload(
        "adpcm_enc", "adpcm_enc.s",
        input_label="in_buf", input_width=2,
        output_label="code_buf", output_width=1,
        golden_fn=lambda s: golden.adpcm_encode(s)[0],
        prepare_input=list),
    "adpcm_enc_unsched": lambda: Workload(
        "adpcm_enc_unsched", "adpcm_enc_unsched.s",
        input_label="in_buf", input_width=2,
        output_label="code_buf", output_width=1,
        golden_fn=lambda s: golden.adpcm_encode(s)[0],
        prepare_input=list),
    "adpcm_dec": lambda: Workload(
        "adpcm_dec", "adpcm_dec.s",
        input_label="code_buf", input_width=1,
        output_label="out_buf", output_width=2,
        golden_fn=lambda s: golden.adpcm_decode(s)[0],
        prepare_input=_adpcm_codes),
    "g721_enc": lambda: Workload(
        "g721_enc", "g721_enc.s",
        input_label="in_buf", input_width=2,
        output_label="code_buf", output_width=1,
        golden_fn=lambda s: golden.g721_encode(s)[0],
        prepare_input=list),
    "g721_dec": lambda: Workload(
        "g721_dec", "g721_dec.s",
        input_label="code_buf", input_width=1,
        output_label="out_buf", output_width=2,
        golden_fn=lambda s: golden.g721_decode(s)[0],
        prepare_input=_g721_codes),
    "huffman_dec": lambda: Workload(
        "huffman_dec", "huffman_dec.s",
        input_label="in_buf", input_width=1,
        output_label="out_buf", output_width=1,
        golden_fn=lambda s, n: huffman.huffman_decode(s, n),
        prepare_input=lambda pcm: huffman.huffman_encode(
            huffman.quantize(pcm)),
        count_fn=len),
}

WORKLOAD_NAMES = tuple(sorted(_REGISTRY))

_CACHE = {}


def get_workload(name: str) -> Workload:
    """Look up a workload by name (``repro.workloads.WORKLOAD_NAMES``)."""
    if name not in _REGISTRY:
        raise KeyError("unknown workload %r (have: %s)"
                       % (name, ", ".join(WORKLOAD_NAMES)))
    if name not in _CACHE:
        _CACHE[name] = _REGISTRY[name]()
    return _CACHE[name]
