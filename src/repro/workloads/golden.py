"""Bit-exact Python reference models of the benchmark codecs.

These are the architectural ground truth for the assembly
implementations in ``workloads/asm``: the integration tests require the
simulated assembly to reproduce these outputs bit-for-bit.

* IMA/DVI ADPCM follows the classic Intel/DVI reference coder used by
  MediaBench's ``adpcm`` benchmark (one 4-bit code per sample; we store
  one code per byte instead of packing two per byte, which changes no
  arithmetic and no branch behaviour).
* The G.721-style codec is a structurally faithful re-implementation of
  CCITT G.721's control skeleton: a log-domain table-search quantizer
  (``quan()``), a two-pole/six-zero adaptive predictor with sign-sign
  LMS adaptation and stability clamps, and an adaptive scale factor.
  Encoder and decoder share the same numeric kernels, exactly as in the
  paper's benchmarks ("both ... share the same numerical functions that
  contain the tight application loops").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

# ----------------------------------------------------------------------
# IMA / DVI ADPCM
# ----------------------------------------------------------------------

INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8,
               -1, -1, -1, -1, 2, 4, 6, 8]

STEPSIZE_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]


@dataclass
class AdpcmState:
    """Predictor state carried across samples (and enc/dec calls)."""

    valpred: int = 0
    index: int = 0


def adpcm_encode(samples: Sequence[int],
                 state: AdpcmState = None) -> Tuple[List[int], AdpcmState]:
    """Encode 16-bit PCM samples to 4-bit ADPCM codes (one per entry)."""
    st = state if state is not None else AdpcmState()
    valpred, index = st.valpred, st.index
    codes: List[int] = []
    for sample in samples:
        step = STEPSIZE_TABLE[index]
        diff = sample - valpred
        sign = 8 if diff < 0 else 0
        if sign:
            diff = -diff

        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            delta = 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            delta |= 1
            vpdiff += step

        if sign:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        if valpred > 32767:
            valpred = 32767
        elif valpred < -32768:
            valpred = -32768

        delta |= sign
        index += INDEX_TABLE[delta]
        if index < 0:
            index = 0
        elif index > 88:
            index = 88
        codes.append(delta)
    return codes, AdpcmState(valpred, index)


def adpcm_decode(codes: Sequence[int],
                 state: AdpcmState = None) -> Tuple[List[int], AdpcmState]:
    """Decode 4-bit ADPCM codes back to 16-bit PCM samples."""
    st = state if state is not None else AdpcmState()
    valpred, index = st.valpred, st.index
    samples: List[int] = []
    for delta in codes:
        delta &= 0xF
        step = STEPSIZE_TABLE[index]

        index += INDEX_TABLE[delta]
        if index < 0:
            index = 0
        elif index > 88:
            index = 88

        sign = delta & 8
        delta &= 7
        vpdiff = step >> 3
        if delta & 4:
            vpdiff += step
        if delta & 2:
            vpdiff += step >> 1
        if delta & 1:
            vpdiff += step >> 2

        if sign:
            valpred -= vpdiff
        else:
            valpred += vpdiff
        if valpred > 32767:
            valpred = 32767
        elif valpred < -32768:
            valpred = -32768
        samples.append(valpred)
    return samples, AdpcmState(valpred, index)


# ----------------------------------------------------------------------
# G.721-style adaptive-predictor codec
# ----------------------------------------------------------------------

#: Log-domain quantizer decision thresholds (scaled by the adaptive
#: scale factor ``y``); searched linearly exactly like G.721's quan().
QUAN_TABLE = [80, 160, 280, 440, 640, 880, 1200]

#: Reconstruction levels matching the 8 quantizer cells.
DQLN_TABLE = [48, 120, 224, 360, 528, 760, 1040, 1360]

#: Scale-factor adaptation weights per code magnitude.
WI_TABLE = [-12, 18, 41, 64, 112, 198, 355, 1122]

Y_MIN = 1
Y_MAX = 1 << 13      # scale factor range
COEF_MAX = 12288     # pole/zero coefficient clamp (0.75 in Q14)
LEAK_SHIFT = 8       # coefficient leakage
GAIN_SHIFT = 5       # sign-sign LMS gain


@dataclass
class G721State:
    """Predictor + quantizer state (shared by encoder and decoder)."""

    y: int = 200                       # adaptive scale factor
    a1: int = 0                        # pole coefficients (Q14)
    a2: int = 0
    b: List[int] = field(default_factory=lambda: [0] * 6)   # zeros (Q14)
    dq: List[int] = field(default_factory=lambda: [0] * 6)  # past quantized
    sr1: int = 0                       # past reconstructed signals
    sr2: int = 0


def _sgn(v: int) -> int:
    """Three-way sign: -1, 0, +1."""
    if v > 0:
        return 1
    if v < 0:
        return -1
    return 0


def _predict(st: G721State) -> Tuple[int, int]:
    """Zero-predictor partial (sez) and full signal estimate (se).

    Both are clamped to 16 bits, as in G.721's own 15/16-bit signal
    arithmetic; the clamps also guarantee every later product fits in a
    signed 32-bit multiply, keeping this model bit-exact with the
    assembly implementation's ``mul``.
    """
    sez = 0
    for i in range(6):
        sez += st.b[i] * st.dq[i]
    sez = _clamp16(sez >> 14)
    se = sez + ((st.a1 * st.sr1 + st.a2 * st.sr2) >> 14)
    return sez, _clamp16(se)


def _quantize(d: int, y: int) -> int:
    """4-bit code for difference ``d`` at scale ``y`` (quan() search)."""
    sign = 8 if d < 0 else 0
    mag = -d if d < 0 else d
    i = 0
    while i < 7:
        if mag < ((QUAN_TABLE[i] * y) >> 9):
            break
        i += 1
    return sign | i


def _dequantize(code: int, y: int) -> int:
    """Quantized difference reconstructed from a 4-bit code."""
    mag = (DQLN_TABLE[code & 7] * y) >> 9
    return -mag if code & 8 else mag


def _clamp16(v: int) -> int:
    if v > 32767:
        return 32767
    if v < -32768:
        return -32768
    return v


def _update(st: G721State, code: int, dq: int, sr: int, sez: int) -> None:
    """Adapt scale factor and predictor (shared by encode/decode).

    Sign-sign LMS with leakage on the six zero coefficients, simplified
    pole adaptation on (a1, a2) with stability clamps, and the G.721-
    style scale-factor first-order update.  All quantities stay well
    inside 32 bits so the assembly implementation matches exactly.
    """
    # scale factor adaptation
    wi = WI_TABLE[code & 7]
    y = st.y + ((wi - st.y) >> 5)
    if y < Y_MIN:
        y = Y_MIN
    elif y > Y_MAX:
        y = Y_MAX
    st.y = y

    # zero (FIR) section: sign-sign LMS + leakage
    sgn_dq = _sgn(dq)
    for i in range(6):
        bi = st.b[i] - (st.b[i] >> LEAK_SHIFT)
        if sgn_dq != 0:
            if _sgn(st.dq[i]) == sgn_dq:
                bi += 1 << GAIN_SHIFT
            elif st.dq[i] != 0:
                bi -= 1 << GAIN_SHIFT
        if bi > COEF_MAX:
            bi = COEF_MAX
        elif bi < -COEF_MAX:
            bi = -COEF_MAX
        st.b[i] = bi

    # pole (IIR) section on the reconstructed signal
    pk0 = _sgn(dq + sez)
    a1 = st.a1 - (st.a1 >> LEAK_SHIFT)
    a2 = st.a2 - (st.a2 >> LEAK_SHIFT)
    if pk0 != 0:
        if _sgn(st.sr1) == pk0:
            a1 += 1 << GAIN_SHIFT
        elif st.sr1 != 0:
            a1 -= 1 << GAIN_SHIFT
        if _sgn(st.sr2) == pk0:
            a2 += 1 << (GAIN_SHIFT - 1)
        elif st.sr2 != 0:
            a2 -= 1 << (GAIN_SHIFT - 1)
    if a1 > COEF_MAX:
        a1 = COEF_MAX
    elif a1 < -COEF_MAX:
        a1 = -COEF_MAX
    if a2 > COEF_MAX >> 1:
        a2 = COEF_MAX >> 1
    elif a2 < -(COEF_MAX >> 1):
        a2 = -(COEF_MAX >> 1)
    st.a1, st.a2 = a1, a2

    # shift delay lines
    st.dq = [dq] + st.dq[:5]
    st.sr2 = st.sr1
    st.sr1 = sr


def g721_encode(samples: Sequence[int],
                state: G721State = None) -> Tuple[List[int], G721State]:
    """Encode 16-bit PCM to 4-bit G.721-style codes."""
    st = state if state is not None else G721State()
    codes: List[int] = []
    for x in samples:
        sez, se = _predict(st)
        d = x - se
        code = _quantize(d, st.y)
        dq = _dequantize(code, st.y)
        sr = _clamp16(se + dq)
        _update(st, code, dq, sr, sez)
        codes.append(code)
    return codes, st


def g721_decode(codes: Sequence[int],
                state: G721State = None) -> Tuple[List[int], G721State]:
    """Decode 4-bit G.721-style codes back to PCM."""
    st = state if state is not None else G721State()
    samples: List[int] = []
    for code in codes:
        code &= 0xF
        sez, se = _predict(st)
        dq = _dequantize(code, st.y)
        sr = _clamp16(se + dq)
        _update(st, code, dq, sr, sez)
        samples.append(sr)
    return samples, st
