"""Benchmark workloads: ADPCM and G.721-style speech codecs.

The paper evaluates on four MediaBench programs: the IMA/DVI ADPCM
encoder and decoder, and the G.721 (CCITT ADPCM speech coding) encoder
and decoder.  This package provides:

* bit-exact Python *golden models* (:mod:`repro.workloads.golden`) used
  to verify the assembly implementations differentially;
* the assembly implementations themselves (``asm/*.s``), hand-written
  for the repro ISA with the same manual fold-candidate scheduling the
  paper applied;
* synthetic speech-like input generation
  (:mod:`repro.workloads.inputs`); MediaBench's audio files are not
  redistributable, and a deterministic synthetic signal keeps every
  experiment self-contained;
* the :class:`~repro.workloads.loader.Workload` harness that assembles a
  codec, loads inputs into simulator memory, runs either simulator and
  extracts outputs.
"""

from repro.workloads.golden import (
    AdpcmState,
    G721State,
    adpcm_decode,
    adpcm_encode,
    g721_decode,
    g721_encode,
)
from repro.workloads.inputs import speech_like, step_pattern
from repro.workloads.loader import (
    Workload,
    WorkloadResult,
    get_workload,
    WORKLOAD_NAMES,
)

__all__ = [
    "AdpcmState",
    "G721State",
    "adpcm_encode",
    "adpcm_decode",
    "g721_encode",
    "g721_decode",
    "speech_like",
    "step_pattern",
    "Workload",
    "WorkloadResult",
    "get_workload",
    "WORKLOAD_NAMES",
]
