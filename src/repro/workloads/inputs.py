"""Deterministic synthetic input generation.

MediaBench ships real audio clips; those are not redistributable, so the
experiments use a synthetic speech-like signal: a sum of gliding
formant-band sinusoids, amplitude-modulated at a syllabic rate, plus
noise.  What matters for branch behaviour is that successive samples are
correlated but sign- and magnitude-diverse — the quantizer's
table-search and sign branches then behave like they do on speech.

All generators are pure functions of (n, seed): every experiment is
exactly reproducible.
"""

from __future__ import annotations

from typing import List

import numpy as np


def speech_like(n: int, seed: int = 1234, amplitude: int = 8000) -> List[int]:
    """``n`` int16 samples of a speech-like synthetic waveform."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    t = np.arange(n, dtype=np.float64)
    # three gliding "formants"
    f1 = 0.021 + 0.008 * np.sin(2 * np.pi * t / 4000.0)
    f2 = 0.063 + 0.015 * np.sin(2 * np.pi * t / 5700.0 + 1.0)
    f3 = 0.141 + 0.020 * np.sin(2 * np.pi * t / 3400.0 + 2.0)
    sig = (1.00 * np.sin(2 * np.pi * np.cumsum(f1))
           + 0.55 * np.sin(2 * np.pi * np.cumsum(f2))
           + 0.30 * np.sin(2 * np.pi * np.cumsum(f3)))
    # syllabic amplitude envelope
    env = 0.35 + 0.65 * (0.5 + 0.5 * np.sin(2 * np.pi * t / 1900.0))
    sig = sig * env + 0.05 * rng.standard_normal(n)
    sig = sig / np.max(np.abs(sig))
    return [int(v) for v in np.clip(sig * amplitude, -32768, 32767)
            .astype(np.int64)]


def step_pattern(n: int, seed: int = 99, amplitude: int = 12000,
                 hold: int = 37) -> List[int]:
    """Piecewise-constant random levels — a torture test for the
    quantizer's largest-cell branches (large jumps, long flats)."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = np.random.default_rng(seed)
    levels = rng.integers(-amplitude, amplitude + 1,
                          size=(n + hold - 1) // hold)
    out = np.repeat(levels, hold)[:n]
    return [int(v) for v in out]
