"""Huffman decoder workload — a maximally control-dominated kernel.

The paper's motivation is "control intensive applications which are
part of a typical reactive system" whose branches depend directly on
input data (Figure 2).  A bit-serial Huffman decoder is the archetype:
every decoded bit drives a 50/50, input-data-dependent branch that no
history-based predictor can learn.  This module provides the golden
model (static canonical code, tree construction, bit-exact
encode/decode) used by the ``huffman_dec.s`` assembly workload.

The alphabet is 16 symbols (PCM samples quantized to 4 bits), with
canonical code lengths chosen to satisfy Kraft equality exactly, so the
code tree is a full binary tree with 15 internal nodes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: symbols in decreasing expected frequency (quantized speech is
#: concentrated around the midpoint 8)
_FREQ_ORDER = [8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15, 0]

#: canonical code lengths in that order; Kraft sum is exactly 1
_LENGTHS = [2, 2, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 14]

#: flag marking a leaf entry in the flattened tree
LEAF_FLAG = 0x100


def code_table() -> Dict[int, Tuple[int, int]]:
    """symbol -> (code value, code length), canonical assignment.

    Codes are built most-significant-bit-first in the usual canonical
    way; the bitstream stores each code MSB-first.
    """
    pairs = sorted(zip(_LENGTHS, _FREQ_ORDER))
    table: Dict[int, Tuple[int, int]] = {}
    code = 0
    prev_len = pairs[0][0]
    for length, symbol in pairs:
        code <<= (length - prev_len)
        table[symbol] = (code, length)
        code += 1
        prev_len = length
    return table


def build_tree() -> List[int]:
    """Flatten the code tree into ``[left0, right0, left1, right1...]``.

    Entry values are either an internal-node index, or
    ``LEAF_FLAG | symbol``.  Node 0 is the root.  The result is exactly
    what ``huffman_dec.s`` carries in its ``.data`` segment.
    """
    table = code_table()
    # build as dict-of-children first
    children: List[List[int]] = [[-1, -1]]   # node 0 = root
    for symbol, (code, length) in sorted(table.items()):
        node = 0
        for i in range(length - 1, -1, -1):
            bit = (code >> i) & 1
            if i == 0:
                children[node][bit] = LEAF_FLAG | symbol
            else:
                child = children[node][bit]
                if child == -1 or child & LEAF_FLAG:
                    children.append([-1, -1])
                    child = len(children) - 1
                    children[node][bit] = child
                node = child
    flat: List[int] = []
    for left, right in children:
        if left == -1 or right == -1:
            raise AssertionError("code tree is not full; Kraft violated")
        flat.extend([left, right])
    return flat


def quantize(pcm: Sequence[int]) -> List[int]:
    """16-level quantization of int16 PCM (the symbol stream)."""
    return [min(15, max(0, (s + 32768) >> 12)) for s in pcm]


def huffman_encode(symbols: Sequence[int]) -> List[int]:
    """Encode symbols into a byte stream (bits LSB-first per byte).

    LSB-first packing matches the assembly decoder's
    ``(byte >> bitpos) & 1`` extraction.
    """
    table = code_table()
    out: List[int] = []
    acc = 0
    nbits = 0
    for sym in symbols:
        code, length = table[sym & 0xF]
        for i in range(length - 1, -1, -1):     # MSB of the code first
            acc |= ((code >> i) & 1) << nbits
            nbits += 1
            if nbits == 8:
                out.append(acc)
                acc = 0
                nbits = 0
    if nbits:
        out.append(acc)
    return out


def huffman_decode(stream: Sequence[int], n_symbols: int) -> List[int]:
    """Golden decoder: walk the tree bit by bit (mirrors the assembly)."""
    tree = build_tree()
    out: List[int] = []
    byte_index = 0
    bitpos = 8                # force initial refill, like the assembly
    current = 0
    for _ in range(n_symbols):
        node = 0
        while True:
            if bitpos == 8:
                current = stream[byte_index]
                byte_index += 1
                bitpos = 0
            bit = (current >> bitpos) & 1
            bitpos += 1
            value = tree[2 * node + bit]
            if value & LEAF_FLAG:
                out.append(value & 0xFF)
                break
            node = value
    return out
