# Bit-serial Huffman decoder — control-dominated reactive kernel.
#
# Decodes n_samples symbols from an LSB-first packed bitstream using a
# static canonical code tree (see repro.workloads.huffman).  Every
# decoded bit drives an input-data-dependent branch (br_bit) that is
# architecturally 50/50 — the paper's Figure 2 pathology in its purest
# form — plus a leaf-test branch (br_leaf) per tree step.
#
# Interface (filled in by repro.workloads.loader):
#   n_samples : number of SYMBOLS to decode (word)
#   in_buf    : packed bitstream bytes
#   out_buf   : decoded symbols, one byte each
#
# Tree layout: tree[2*node] / tree[2*node+1] are the left/right child
# entries; an entry with bit 0x100 set is a leaf carrying the symbol in
# its low byte.  The table below is build_tree()'s output for the
# canonical code in repro.workloads.huffman (verified by test).
#
# Register allocation:
#   s0=current byte  s1=bitpos  s5=stream ptr  s6=out ptr  s7=symbols left
#   a0=&tree  t0=node/child  t2=bit  t3=&entry  t5=leaf flag  others scratch

.data
n_samples:  .word 0
in_buf:     .space 16384
out_buf:    .space 16384
tree:
    .word 14, 1
    .word 265, 2
    .word 262, 3
    .word 266, 4
    .word 261, 5
    .word 267, 6
    .word 260, 7
    .word 268, 8
    .word 259, 9
    .word 269, 10
    .word 258, 11
    .word 270, 12
    .word 257, 13
    .word 256, 271
    .word 263, 264

.text
main:
    la   t0, n_samples
    lw   s7, 0(t0)
    la   s5, in_buf
    la   s6, out_buf
    la   a0, tree
    li   s1, 8                 # force a refill on the first bit
    li   s0, 0
    beqz s7, done

sym_loop:
    li   t0, 0                 # node = root
walk:
    slti t4, s1, 8             # bits left in the current byte?
    bnez t4, nofill
    lbu  s0, 0(s5)             # refill
    addi s5, s5, 1
    li   s1, 0
nofill:
    srlv t2, s0, s1            # shift current bit down
    andi t2, t2, 1             # bit                  <- predicate
    addi s1, s1, 1             # bitpos++             (independent)
    sll  t3, t0, 3             # node * 8             (independent)
    addu t3, t3, a0            # &tree[2*node]        (independent)
br_bit:
    beqz t2, goleft            # fold candidate: pure input data, 50/50
    addi t3, t3, 4             # right-child slot
goleft:
    lw   t0, 0(t3)             # child entry
    andi t5, t0, 0x100         # leaf?                <- predicate
    andi t0, t0, 0xFF          # symbol / node index  (independent)
    sll  t6, t5, 0             # scheduling padding   (independent)
br_leaf:
    beqz t5, walk              # fold candidate: internal node -> walk on
    sb   t0, 0(s6)             # leaf: emit symbol
    addi s6, s6, 1
    addi s7, s7, -1
    bnez s7, sym_loop
done:
    halt
