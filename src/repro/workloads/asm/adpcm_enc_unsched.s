# IMA/DVI ADPCM encoder — UNSCHEDULED variant.
#
# Functionally identical to adpcm_enc.s (bit-exact same outputs), but in
# the naive "as compiled" instruction order: every branch's predicate is
# computed immediately before the branch, so the definition-to-branch
# distance is 1 and nothing is ASBR-foldable.  Input for the scheduling
# ablation (paper Section 5.1): repro.sched.schedule_program recovers
# the fold distances automatically.
#
# Interface identical to adpcm_enc.s.

.data
n_samples:   .word 0
in_buf:      .space 32768
code_buf:    .space 16384
step_table:
    .word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17
    .word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45
    .word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118
    .word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307
    .word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796
    .word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066
    .word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358
    .word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899
    .word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
index_table:
    .word -1, -1, -1, -1, 2, 4, 6, 8
    .word -1, -1, -1, -1, 2, 4, 6, 8

.text
main:
    la   r8, n_samples
    lw   s4, 0(r8)
    la   s2, in_buf
    la   s3, code_buf
    la   s5, step_table
    la   s6, index_table
    li   s0, 0                 # valpred
    li   s1, 0                 # index
    beqz s4, done

loop:
    sll  t0, s1, 2
    addu t0, t0, s5
    lw   t1, 0(t0)             # step
    lh   t2, 0(s2)             # sample
    addi s2, s2, 2
    li   t5, 0                 # delta
    li   t6, 0                 # sign
    srl  t4, t1, 3             # vpdiff = step >> 3
    subu t3, t2, s0            # diff   <- defined right before the branch
br_sign:
    bgez t3, possign
    subu t3, r0, t3
    li   t6, 8
possign:
    subu t7, t3, t1            # c1     <- right before the branch
br_bit2:
    bltz t7, bit1
    ori  t5, t5, 4
    move t3, t7
    addu t4, t4, t1
bit1:
    srl  t8, t1, 1             # step2
    subu t7, t3, t8            # c2     <- right before the branch
br_bit1:
    bltz t7, bit0
    ori  t5, t5, 2
    move t3, t7
    addu t4, t4, t8
bit0:
    srl  t9, t8, 1             # step4
    subu t7, t3, t9            # c3     <- right before the branch
br_bit0:
    bltz t7, nobit
    ori  t5, t5, 1
    addu t4, t4, t9
nobit:
    or   t5, t5, t6            # delta |= sign
    beqz t6, addv
    subu s0, s0, t4
    b    clampv
addv:
    addu s0, s0, t4
clampv:
    li   t0, 32767
    slt  t1, t0, s0
    beqz t1, nothi
    li   s0, 32767
nothi:
    li   t0, -32768
    slt  t1, s0, t0
    beqz t1, notlo
    li   s0, -32768
notlo:
    sll  t0, t5, 2
    addu t0, t0, s6
    lw   t7, 0(t0)
    addu s1, s1, t7
    bgez s1, ixnotneg
    li   s1, 0
ixnotneg:
    li   t0, 88
    slt  t1, t0, s1
    beqz t1, ixok
    li   s1, 88
ixok:
    sb   t5, 0(s3)
    addi s3, s3, 1
    addi s4, s4, -1
    bnez s4, loop
done:
    halt
