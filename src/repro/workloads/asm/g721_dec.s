# G.721-style ADPCM decoder (MediaBench "g721 decoder" equivalent).
#
# Shares the numeric kernels of g721_enc.s — the predictor, the
# dequantizer, the scale-factor and sign-sign LMS adaptation — exactly
# as the paper's encoder/decoder pair does ("both the decoder and the
# encoder share the same numerical functions that contain the tight
# application loops").  The quantizer search is absent; the decoder
# consumes 4-bit codes and reconstructs PCM.
#
# Interface (filled in by repro.workloads.loader):
#   n_samples : number of codes (word)
#   code_buf  : one 4-bit code per byte (input)
#   out_buf   : int16 PCM output samples
#
# Register allocation and fold candidates as in g721_enc.s (minus
# br_qsign/br_quan).

.data
n_samples:  .word 0
code_buf:   .space 16384
out_buf:    .space 32768
b_arr:      .space 24
dq_arr:     .space 24
quan_table: .word 80, 160, 280, 440, 640, 880, 1200, 32767
dqln_table: .word 48, 120, 224, 360, 528, 760, 1040, 1360
wi_table:   .word -12, 18, 41, 64, 112, 198, 355, 1122

.text
main:
    la   t0, n_samples
    lw   s7, 0(t0)
    la   s5, code_buf
    la   s6, out_buf
    la   a0, b_arr
    la   a1, dq_arr
    la   a3, dqln_table
    la   gp, wi_table
    li   s0, 200               # y
    li   s1, 0                 # a1
    li   s2, 0                 # a2
    li   s3, 0                 # sr1
    li   s4, 0                 # sr2
    beqz s7, done

loop:
    # ---- zero predictor: sez = clamp16(sum(b[i]*dq[i]) >> 14) --------
    li   t0, 0
    li   t1, 0
sezloop:
    addu v0, a0, t1
    lw   v1, 0(v0)             # b[i]
    addu v0, a1, t1
    lw   v0, 0(v0)             # dq[i]
    mul  v0, v0, v1
    addu t0, t0, v0
    addi t1, t1, 4
    slti v0, t1, 24
    bnez v0, sezloop
    sra  t0, t0, 14
    li   t1, 32767
    slt  v0, t1, t0
    beqz v0, seznothi
    li   t0, 32767
seznothi:
    li   t1, -32768
    slt  v0, t0, t1
    beqz v0, seznotlo
    li   t0, -32768
seznotlo:
    move fp, t0                # sez

    # ---- full estimate: se = clamp16(sez + (a1*sr1 + a2*sr2) >> 14) --
    mul  v0, s1, s3
    mul  v1, s2, s4
    addu v0, v0, v1
    sra  v0, v0, 14
    addu t9, fp, v0
    li   t1, 32767
    slt  v1, t1, t9
    beqz v1, senothi
    li   t9, 32767
senothi:
    li   t1, -32768
    slt  v1, t9, t1
    beqz v1, senotlo
    li   t9, -32768
senotlo:

    # ---- read code -----------------------------------------------------
    lbu  t5, 0(s5)
    addi s5, s5, 1
    andi t5, t5, 15            # code

    # ---- dequantize: dq = +-((dqln[code&7] * y) >> 9) ----------------
    andi t0, t5, 7
    sll  t0, t0, 2
    addu t0, t0, a3
    lw   t2, 0(t0)             # dqln
    mul  t2, t2, s0
    sra  t2, t2, 9             # magnitude
    andi t1, t5, 8             # sign bit             <- predicate
    andi t4, t5, 7             # wi table offset      (independent)
    sll  t4, t4, 2             #                      (independent)
    addu t4, t4, gp            # &wi[code&7]          (independent)
br_dqsign:
    beqz t1, dqpos             # fold candidate (dist 4)
    subu t2, r0, t2            # dq = -magnitude
dqpos:
    addu t3, t9, t2            # sr = se + dq
    lw   t4, 0(t4)             # wi
    li   t0, 32767
    slt  v0, t0, t3
    bnez v0, sr_hi
    li   t0, -32768
    slt  v0, t3, t0
    bnez v0, sr_lo
sr_ok:
    # ---- scale factor: y += (wi - y) >> 5, clamp [1, 8192] -----------
    subu t0, t4, s0
    sra  t0, t0, 5
    addu s0, s0, t0
    slti v0, s0, 1
    beqz v0, ynotmin
    li   s0, 1
ynotmin:
    li   t0, 8192
    slt  v0, t0, s0
    beqz v0, ynotmax
    li   s0, 8192
ynotmax:

    # ---- zero section: sign-sign LMS with leakage --------------------
    li   t1, 0
bloop:
    addu t0, a1, t1
    lw   t4, 0(t0)             # dq[i]
    addu t0, a0, t1            # &b[i]
    lw   t5, 0(t0)             # b[i]
    mul  t4, t4, t2            # p = dq[i] * dq       <- predicate
    sra  t6, t5, 8             #                      (independent)
    subu t5, t5, t6            # leakage              (independent)
    addi t1, t1, 4             #                      (independent)
    slti t7, t1, 24            # loop test            (independent)
br_bsign1:
    bgtz t4, bpos              # fold candidate: same sign -> +32
    sll  v0, r0, 0             # scheduling padding
br_bsign2:
    bgez t4, bclamp            # fold candidate: p == 0 -> unchanged
    addi t5, t5, -32           # opposite sign -> -32
    b    bclamp
bpos:
    addi t5, t5, 32
bclamp:
    li   t6, 12288
    slt  v0, t6, t5
    beqz v0, bnothi
    li   t5, 12288
bnothi:
    li   t6, -12288
    slt  v0, t5, t6
    beqz v0, bnotlo
    li   t5, -12288
bnotlo:
    sw   t5, 0(t0)
    bnez t7, bloop

    # ---- pole section -------------------------------------------------
    addu t4, t2, fp            # pk0v = dq + sez
    mul  t5, t4, s3            # p1 = pk0v * sr1      <- predicate
    mul  t6, t4, s4            # p2 = pk0v * sr2      <- predicate
    sra  t7, s1, 8
    subu t7, s1, t7            # a1 leaked
    sra  t0, s2, 8
    subu t0, s2, t0            # a2 leaked
br_a1sign1:
    bgtz t5, a1pos             # fold candidate (dist 5)
    sll  v0, r0, 0             # scheduling padding
br_a1sign2:
    bgez t5, a1done            # fold candidate: p1 == 0
    addi t7, t7, -32
    b    a1done
a1pos:
    addi t7, t7, 32
a1done:
    li   t1, 12288
    slt  v0, t1, t7
    beqz v0, a1nothi
    li   t7, 12288
a1nothi:
    li   t1, -12288
    slt  v0, t7, t1
    beqz v0, a1notlo
    li   t7, -12288
a1notlo:
    move s1, t7
br_a2sign1:
    bgtz t6, a2pos             # fold candidate
    sll  v0, r0, 0             # scheduling padding
br_a2sign2:
    bgez t6, a2done            # fold candidate: p2 == 0
    addi t0, t0, -16
    b    a2done
a2pos:
    addi t0, t0, 16
a2done:
    li   t1, 6144
    slt  v0, t1, t0
    beqz v0, a2nothi
    li   t0, 6144
a2nothi:
    li   t1, -6144
    slt  v0, t0, t1
    beqz v0, a2notlo
    li   t0, -6144
a2notlo:
    move s2, t0

    # ---- delay lines + output ------------------------------------------
    lw   t0, 16(a1)
    sw   t0, 20(a1)
    lw   t0, 12(a1)
    sw   t0, 16(a1)
    lw   t0, 8(a1)
    sw   t0, 12(a1)
    lw   t0, 4(a1)
    sw   t0, 8(a1)
    lw   t0, 0(a1)
    sw   t0, 4(a1)
    sw   t2, 0(a1)             # dq[0] = dq
    move s4, s3                # sr2 = sr1
    move s3, t3                # sr1 = sr
    sh   t3, 0(s6)             # emit the reconstructed sample
    addi s6, s6, 2
    addi s7, s7, -1
    bnez s7, loop
done:
    halt

sr_hi:
    li   t3, 32767
    b    sr_ok
sr_lo:
    li   t3, -32768
    b    sr_ok
