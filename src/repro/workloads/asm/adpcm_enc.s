# IMA/DVI ADPCM encoder (MediaBench "adpcm rawcaudio" equivalent).
#
# Interface (filled in by repro.workloads.loader):
#   n_samples : number of input samples (word)
#   in_buf    : int16 PCM input samples
#   code_buf  : one 4-bit code per output byte
#
# Register allocation:
#   s0=valpred  s1=index  s2=in ptr  s3=out ptr  s4=count
#   s5=&step_table  s6=&index_table
#
# The four hard-to-predict fold candidates (sign branch br_sign and the
# three magnitude branches br_bit2/br_bit1/br_bit0) are manually
# scheduled so their predicate register is defined >= 3 instructions
# before the branch, as the paper does for its ADPCM candidates
# (Section 8: "A manual scheduling in the application code is performed
# for the branches that we identify as candidates for folding").

.data
n_samples:   .word 0
in_buf:      .space 32768          # 16384 int16 samples
code_buf:    .space 16384
step_table:
    .word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17
    .word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45
    .word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118
    .word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307
    .word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796
    .word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066
    .word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358
    .word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899
    .word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
index_table:
    .word -1, -1, -1, -1, 2, 4, 6, 8
    .word -1, -1, -1, -1, 2, 4, 6, 8

.text
main:
    la   r8, n_samples
    lw   s4, 0(r8)
    la   s2, in_buf
    la   s3, code_buf
    la   s5, step_table
    la   s6, index_table
    li   s0, 0                 # valpred = 0
    li   s1, 0                 # index = 0
    beqz s4, done

loop:
    sll  t0, s1, 2             # step = step_table[index]
    addu t0, t0, s5
    lw   t1, 0(t0)             # t1 = step
    lh   t2, 0(s2)             # sample (paper Figure 2's lh)
    addi s2, s2, 2
    subu t3, t2, s0            # diff = sample - valpred   <- predicate def
    srl  t4, t1, 3             # vpdiff = step >> 3        (independent)
    li   t5, 0                 # delta = 0                 (independent)
    li   t6, 0                 # sign = 0                  (independent)
br_sign:
    bgez t3, possign           # fold candidate (dist 4)
    subu t3, r0, t3            # diff = -diff
    li   t6, 8                 # sign = 8
possign:
    subu t7, t3, t1            # c1 = diff - step          <- predicate def
    srl  t8, t1, 1             # step2 = step >> 1         (independent)
    srl  t9, t8, 1             # step4 = step >> 2         (independent)
    or   t5, t5, t6            # delta |= sign (early)     (independent)
br_bit2:
    bltz t7, bit1              # fold candidate (dist 4)
    ori  t5, t5, 4
    move t3, t7                # diff -= step
    addu t4, t4, t1            # vpdiff += step
bit1:
    subu t7, t3, t8            # c2 = diff - step2         <- predicate def
    sll  t0, t6, 0             # keep sign handy           (independent)
    addi s4, s4, -1            # count-- (hoisted)         (independent)
    sll  t1, t9, 0             # copy step4                (independent)
br_bit1:
    bltz t7, bit0              # fold candidate (dist 4)
    ori  t5, t5, 2
    move t3, t7                # diff -= step2
    addu t4, t4, t8            # vpdiff += step2
bit0:
    subu t7, t3, t9            # c3 = diff - step4         <- predicate def
    sll  t2, t5, 2             # scale delta early for the
    addu t2, t2, s6            #   index_table lookup      (independent)
    sll  t3, t3, 0             # nop-ish filler            (independent)
br_bit0:
    bltz t7, nobit             # fold candidate (dist 4)
    ori  t5, t5, 1
    addu t4, t4, t9            # vpdiff += step4
    sll  t2, t5, 2             # delta changed: redo table address
    addu t2, t2, s6
nobit:
    lw   t7, 0(t2)             # index_table[delta] loaded early (keeps
                               # the fold target non-control)
    beqz t6, addv              # apply sign to valpred
    subu s0, s0, t4
    b    clampv
addv:
    addu s0, s0, t4
clampv:
    li   t0, 32767
    slt  t1, t0, s0            # valpred > 32767 ?
    beqz t1, nothi
    li   s0, 32767
nothi:
    li   t0, -32768
    slt  t1, s0, t0            # valpred < -32768 ?
    beqz t1, notlo
    li   s0, -32768
notlo:
    addu s1, s1, t7            # index += index_table[delta]
    bgez s1, ixnotneg
    li   s1, 0
ixnotneg:
    li   t0, 88
    slt  t1, t0, s1            # index > 88 ?
    beqz t1, ixok
    li   s1, 88
ixok:
    sb   t5, 0(s3)             # emit the 4-bit code (one per byte)
    addi s3, s3, 1
    bnez s4, loop
done:
    halt
