# IMA/DVI ADPCM decoder (MediaBench "adpcm rawdaudio" equivalent).
#
# Interface (filled in by repro.workloads.loader):
#   n_samples : number of codes to decode (word)
#   code_buf  : 4-bit codes, one per byte (input)
#   out_buf   : int16 PCM output samples
#
# Register allocation:
#   s0=valpred  s1=index  s2=code ptr  s3=out ptr  s4=count
#   s5=&step_table  s6=&index_table
#
# The three fold candidates (br_b4/br_b2/br_b1, the delta bit tests) get
# their predicates computed right after the code byte loads, several
# instructions before the branch — the decoder's natural schedule
# already separates them, which is why the paper could fold 3 decoder
# branches with no extra work.

.data
n_samples:   .word 0
code_buf:    .space 16384
out_buf:     .space 32768
step_table:
    .word 7, 8, 9, 10, 11, 12, 13, 14, 16, 17
    .word 19, 21, 23, 25, 28, 31, 34, 37, 41, 45
    .word 50, 55, 60, 66, 73, 80, 88, 97, 107, 118
    .word 130, 143, 157, 173, 190, 209, 230, 253, 279, 307
    .word 337, 371, 408, 449, 494, 544, 598, 658, 724, 796
    .word 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066
    .word 2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358
    .word 5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899
    .word 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767
index_table:
    .word -1, -1, -1, -1, 2, 4, 6, 8
    .word -1, -1, -1, -1, 2, 4, 6, 8

.text
main:
    la   r8, n_samples
    lw   s4, 0(r8)
    la   s2, code_buf
    la   s3, out_buf
    la   s5, step_table
    la   s6, index_table
    li   s0, 0                 # valpred = 0
    li   s1, 0                 # index = 0
    beqz s4, done

loop:
    lbu  t5, 0(s2)             # delta code
    addi s2, s2, 1
    sll  t0, s1, 2             # step = step_table[index]
    addu t0, t0, s5
    lw   t1, 0(t0)             # t1 = step
    andi t6, t5, 8             # sign                      <- predicate defs
    andi t2, t5, 4             #   (all three bit tests and the sign are
    andi t3, t5, 2             #    available right after the code load)
    andi t4, t5, 1
    sll  t0, t5, 2             # index += index_table[delta]
    addu t0, t0, s6
    lw   t0, 0(t0)
    addu s1, s1, t0
    bgez s1, ixnotneg
    li   s1, 0
ixnotneg:
    li   t0, 88
    slt  t7, t0, s1            # index > 88 ?
    beqz t7, ixok
    li   s1, 88
ixok:
    srl  t7, t1, 3             # vpdiff = step >> 3
br_b4:
    beqz t2, no4               # fold candidate (dist >= 8)
    addu t7, t7, t1            # vpdiff += step
no4:
    srl  t8, t1, 1             # step >> 1
br_b2:
    beqz t3, no2               # fold candidate
    addu t7, t7, t8            # vpdiff += step >> 1
no2:
    srl  t8, t1, 2             # step >> 2
br_b1:
    beqz t4, no1               # fold candidate
    addu t7, t7, t8            # vpdiff += step >> 2
no1:
    addi s4, s4, -1            # count-- (hoisted; keeps the br_b1 fold
                               # target non-control)
    beqz t6, addv              # apply sign
    subu s0, s0, t7
    b    clampv
addv:
    addu s0, s0, t7
clampv:
    li   t0, 32767
    slt  t1, t0, s0            # valpred > 32767 ?
    beqz t1, nothi
    li   s0, 32767
nothi:
    li   t0, -32768
    slt  t1, s0, t0            # valpred < -32768 ?
    beqz t1, notlo
    li   s0, -32768
notlo:
    sh   s0, 0(s3)             # emit the reconstructed sample
    addi s3, s3, 2
    bnez s4, loop
done:
    halt
