"""Shared tag/index geometry of PC-keyed prediction tables.

Every PC-keyed hardware structure in the repo — the branch target
buffer (:mod:`repro.predictors.btb`), the ASBR Branch Identification
Table (:mod:`repro.asbr.bit`) and the two-level BTB hierarchy
(:mod:`repro.frontend.btb`) — sizes and indexes its entries through
these helpers instead of duplicating the tag math.

This module is a dependency *leaf* on purpose: :mod:`repro.asbr.bit`
needs the entry model at import time, but importing anything under
``repro.predictors`` from there would close an import cycle through
``repro.sim.pipeline`` (predictors ``__init__`` → evaluate → sim →
asbr).  ``repro.predictors.btb`` re-exports everything here, so code
that can afford the predictors package keeps importing from there.
"""

from __future__ import annotations

#: Significant PC bits stored as a tag: 32-bit PCs are word-aligned, so
#: the two low bits are implied.
PC_TAG_BITS = 30

#: Significant bits of a stored branch/jump target (same alignment).
TARGET_BITS = 30


def pc_index(pc: int, mask: int) -> int:
    """Word-granular slot/set index of ``pc`` in a power-of-two table.

    ``mask`` is ``entries - 1`` (or ``sets - 1``).  Every PC-keyed
    structure in the repo indexes this way so aliasing behaviour is
    consistent across the BTB, the BTB hierarchy and the BIT banks.
    """
    return (pc >> 2) & mask


def entry_state_bits(payload_bits: int = TARGET_BITS) -> int:
    """SRAM bits of one tagged entry: PC tag + payload + valid bit."""
    return PC_TAG_BITS + payload_bits + 1
