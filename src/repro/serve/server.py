"""The simulation-as-a-service daemon: asyncio front, pool back.

``repro serve`` turns the runner stack into a long-lived batch server.
Architecture, front to back:

* **HTTP layer** — a hand-rolled HTTP/1.1 loop over ``asyncio.
  start_server`` (stdlib only; the container has no aiohttp).  Plain
  JSON request/response bodies, keep-alive connections for load, and
  chunked JSONL for job event streams.
* **Hot layer** — a bounded in-memory LRU of wire-ready result
  records.  A warm request never touches the filesystem, which is what
  carries the ≥1000 cached requests/s load target
  (``tests/test_serve_load.py``).
* **Coalescing layer** — identical in-flight ``/run`` submissions are
  folded onto one execution, keyed by the runner's content-addressed
  spec hash ``(key, metrics?)``.  The N-1 followers await the leader's
  future; exactly one simulation happens (locked by the load test via
  the ``on_execute`` counter hook).
* **Cache layer** — the shared on-disk :class:`~repro.runner.
  ResultCache`, sharded by spec-hash prefix (``shards=256`` by
  default) so the daemon's pool workers and any sibling tenants don't
  contend on one directory.
* **Execution layer** — :func:`repro.runner.run_sweep` on worker
  threads, with the PR 4 crash machinery (``task_timeout``/
  ``retries``/``on_error="return"``, pool rebuild, serial fallback).
  A SIGKILLed worker therefore surfaces as a ``failed`` record inside
  a terminal job — never as a hung connection — and the daemon keeps
  serving throughout (``tests/test_serve_chaos.py``).

PR 9 adds the layers that make the daemon itself expendable:

* **Durability** — with ``--state-dir`` every job owns a fsync'd
  write-ahead log (:mod:`repro.serve.jobs`, on the shared
  :mod:`repro.wal` helpers).  Startup replays the logs *after* the
  listener binds (``/readyz`` answers ``ready: false`` meanwhile) and
  re-enqueues only the unsettled specs of unfinished jobs; settled
  specs replay from the WAL and anything that completed between its
  journal write and the crash resolves from the result cache —
  restart finishes a job with zero recomputation
  (``tests/test_serve_durability.py``, ``benchmarks/
  serve_restart_smoke.py``).
* **Admission control** — in-flight ``/run`` executions and
  active+queued jobs are bounded; a saturated daemon sheds with
  ``429`` + ``Retry-After`` and a draining one (SIGTERM, ``POST
  /shutdown``) with ``503``, instead of building an unbounded backlog
  it cannot drain (``tests/test_serve_admission.py``).
* **Deadlines** — a request's ``deadline_ms`` flows request → job →
  ``map_specs(deadline=)``; pending work past the deadline settles as
  journaled ``fail_kind="deadline"`` records, never a hung
  connection, and the deadline itself is wall-clock so it survives a
  restart.

Nothing here logs tracebacks: every failure is rendered as one log
line and a structured HTTP error, which is what the CI serve-smoke
greps for.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import logging
import multiprocessing
import time
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from repro.runner import ResultCache, RunSpec, run_sweep
from repro.serve.jobs import JobStore, _result_record
from repro.serve.protocol import (
    WireError,
    deadline_from_wire,
    spec_from_wire,
    spec_key,
    specs_from_wire,
)
from repro.telemetry.events import (
    SERVE_DEADLINE,
    SERVE_DRAIN,
    SERVE_RECOVER,
    SERVE_SHED,
    TraceEvent,
)

log = logging.getLogger("repro.serve")

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}

#: counter keys, in render order
COUNTER_KEYS = ("requests", "executions", "coalesced", "hot_hits",
                "disk_hits", "jobs_submitted", "jobs_failed",
                "jobs_recovered", "shed_requests", "deadline_expired",
                "errors")


class Shed(Exception):
    """Admission control rejected this request (429 saturated / 503
    draining); carries the status and a client-safe reason."""

    def __init__(self, status: int, reason: str) -> None:
        super().__init__(reason)
        self.status = status
        self.reason = reason


@dataclasses.dataclass
class ServeConfig:
    """Everything the daemon needs, in one picklable bag."""

    host: str = "127.0.0.1"
    port: int = 8765                  # 0 = ephemeral (bound port is
    #                                   published on Server.port)
    cache_dir: Optional[str] = None   # None = no disk cache
    shards: int = 256
    max_bytes: Optional[int] = None
    workers: int = 0                  # pool size for sweep/DSE jobs
    task_timeout: Optional[float] = None
    retries: int = 0
    hot_capacity: int = 4096          # in-memory result records
    drain_timeout: float = 10.0       # grace for jobs at shutdown
    max_body: int = 32 << 20
    #: job WAL directory; None = in-memory jobs only (pre-PR 9
    #: behaviour).  With a state dir the daemon is crash-recoverable:
    #: restart on the same dir replays every job's journal.
    state_dir: Optional[str] = None
    #: admission control: jobs executing concurrently / waiting beyond
    #: that / distinct uncached ``/run`` executions in flight.  Beyond
    #: these the daemon sheds with 429 + ``Retry-After`` rather than
    #: queueing unboundedly.
    max_active_jobs: int = 4
    max_queued_jobs: int = 16
    max_inflight_runs: int = 64
    retry_after: float = 1.0          # Retry-After hint on 429/503
    #: optional telemetry sink (e.g. :class:`~repro.telemetry.
    #: JsonlTraceSink`) receiving serve lifecycle TraceEvents
    #: (``serve_recover``/``serve_shed``/``serve_deadline``/
    #: ``serve_drain``)
    lifecycle_sink: Optional[object] = None
    #: test/observer hook, called with the spec list just before every
    #: execution dispatch — the load suite counts pool executions here
    on_execute: Optional[Callable[[List[RunSpec]], None]] = None


class Server:
    """One daemon instance.  ``await start()`` binds, ``await serve()``
    runs until :meth:`request_shutdown` (signal, ``POST /shutdown`` or
    a test harness) and then drains gracefully."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.cache = (ResultCache(cfg.cache_dir, max_bytes=cfg.max_bytes,
                                  shards=cfg.shards)
                      if cfg.cache_dir else None)
        self.jobs = JobStore(state_dir=cfg.state_dir)
        self.counters = dict.fromkeys(COUNTER_KEYS, 0)
        self.port: Optional[int] = None
        self._hot: "OrderedDict[tuple, dict]" = OrderedDict()
        self._inflight: dict = {}
        self._job_tasks: set = set()
        self._conns: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self._ready_event: Optional[asyncio.Event] = None
        self._job_sem: Optional[asyncio.Semaphore] = None
        self._active_jobs = 0
        self._waiting_jobs = 0
        self._started_at = time.time()

    @property
    def draining(self) -> bool:
        return self._stopping is not None and self._stopping.is_set()

    @property
    def ready(self) -> bool:
        """True once WAL replay has finished and until drain begins."""
        return (self._ready_event is not None
                and self._ready_event.is_set() and not self.draining)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._ready_event = asyncio.Event()
        self._job_sem = asyncio.Semaphore(
            max(1, self.config.max_active_jobs))
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("listening on %s:%d (workers=%d, cache=%s, shards=%d, "
                 "state=%s)",
                 self.config.host, self.port, self.config.workers,
                 self.config.cache_dir or "-", self.config.shards,
                 self.config.state_dir or "-")
        # recovery runs *after* the listener binds so /healthz and
        # /readyz are observable during replay; work submission stays
        # 503 until the WALs have been replayed
        task = self._loop.create_task(self._recover_state())
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)

    async def _recover_state(self) -> None:
        """Replay job WALs, resume unfinished jobs, then go ready."""
        try:
            if self.jobs.state_dir is not None:
                unfinished = await asyncio.to_thread(self.jobs.recover)
                recovered = [j for j in self.jobs.list()
                             if j.n_recovered or j in unfinished]
                self.counters["jobs_recovered"] += len(recovered)
                for job in recovered:
                    self._lifecycle(SERVE_RECOVER, job=job.id,
                                    settled=job.n_done,
                                    pending=job.n_total - job.n_done)
                if recovered or self.jobs.wal_dropped:
                    log.info("recovered %d job(s) from %s (%d resumed, "
                             "%d torn WAL line(s) dropped)",
                             len(recovered), self.jobs.state_dir,
                             len(unfinished), self.jobs.wal_dropped)
                for job in unfinished:
                    self._spawn_job(job, resume=True)
        except Exception as exc:
            # an unreadable state dir must not kill the daemon: log,
            # serve fresh work, leave the WALs untouched for forensics
            self.counters["errors"] += 1
            log.error("state recovery failed: %s: %s",
                      type(exc).__name__, exc)
        finally:
            self._ready_event.set()

    async def wait_ready(self) -> None:
        await self._ready_event.wait()

    async def serve(self) -> None:
        """Run until shutdown is requested, then drain and close."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        self._lifecycle(SERVE_DRAIN,
                        active_jobs=self._active_jobs,
                        waiting_jobs=self._waiting_jobs)
        log.info("draining: %d active job(s), %d waiting",
                 self._active_jobs, self._waiting_jobs)
        self._server.close()
        await self._server.wait_closed()
        if self._job_tasks:
            done, pending = await asyncio.wait(
                list(self._job_tasks), timeout=self.config.drain_timeout)
            for task in pending:
                task.cancel()
        for writer in list(self._conns):
            try:
                writer.close()
            except Exception:
                pass
        # let the handlers observe EOF and finish before asyncio.run
        # tears the loop down — a cancelled reader would log a spurious
        # traceback, and this daemon's log is asserted traceback-free
        for _ in range(200):
            if not self._conns:
                break
            await asyncio.sleep(0.01)
        # every WAL record is already fsynced; this just drops handles
        self.jobs.close()
        log.info("shutdown complete: %d requests, %d executions, "
                 "%d coalesced, %d jobs failed",
                 self.counters["requests"], self.counters["executions"],
                 self.counters["coalesced"], self.counters["jobs_failed"])

    def request_shutdown(self) -> None:
        """Threadsafe + signal-safe stop trigger."""
        loop, stopping = self._loop, self._stopping
        if loop is None or stopping is None:
            return
        loop.call_soon_threadsafe(stopping.set)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._conns.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                self.counters["requests"] += 1
                keep = await self._dispatch(method, path, body, writer)
                await writer.drain()
                if not keep or self._stopping.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass                      # loop teardown: exit quietly
        except Exception as exc:
            self.counters["errors"] += 1
            log.error("connection handler error: %s: %s",
                      type(exc).__name__, exc)
        finally:
            self._conns.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self, reader) \
            -> Optional[Tuple[str, str, bytes]]:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.split()
        if len(parts) < 2:
            return None
        method = parts[0].decode("latin-1").upper()
        path = parts[1].decode("latin-1").split("?", 1)[0]
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"", b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length > self.config.max_body:
            raise WireError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    def _send_json(self, writer, status: int, obj: dict,
                   keep: bool = True,
                   headers: Optional[dict] = None) -> None:
        payload = json.dumps(obj).encode("utf-8") + b"\n"
        extra = "".join("%s: %s\r\n" % kv
                        for kv in (headers or {}).items())
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\n"
                "%s"
                "Connection: %s\r\n\r\n"
                % (status, _REASONS.get(status, "OK"), len(payload),
                   extra, "keep-alive" if keep else "close"))
        writer.write(head.encode("latin-1") + payload)

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer) -> bool:
        """Route one request; returns whether to keep the connection."""
        try:
            return await self._route(method, path, body, writer)
        except Shed as exc:
            self.counters["shed_requests"] += 1
            self._lifecycle(SERVE_SHED, path=path, reason=exc.reason)
            retry_after = max(1, int(round(self.config.retry_after)))
            self._send_json(writer, exc.status,
                            {"ok": False, "error": exc.reason,
                             "shed": True, "retry_after": retry_after},
                            headers={"Retry-After": str(retry_after)})
            return True
        except WireError as exc:
            self._send_json(writer, 400, {"ok": False,
                                          "error": str(exc)})
            return True
        except json.JSONDecodeError as exc:
            self._send_json(writer, 400, {"ok": False,
                                          "error": "bad JSON: %s" % exc})
            return True
        except Exception as exc:
            self.counters["errors"] += 1
            log.error("error handling %s %s: %s: %s", method, path,
                      type(exc).__name__, exc)
            self._send_json(writer, 500,
                            {"ok": False,
                             "error": "%s: %s" % (type(exc).__name__,
                                                  exc)})
            return True

    async def _route(self, method: str, path: str, body: bytes,
                     writer) -> bool:
        if path == "/healthz" and method == "GET":
            # liveness: the process is up and the loop is turning —
            # true even while replaying WALs or draining
            self._send_json(writer, 200, {"ok": True})
            return True
        if path == "/readyz" and method == "GET":
            # readiness: false while WAL replay runs and once draining
            # begins, so a balancer stops routing before SIGTERM bites
            if self.ready:
                self._send_json(writer, 200, {"ok": True, "ready": True})
            else:
                self._send_json(writer, 503, {
                    "ok": False, "ready": False,
                    "recovering": (self._ready_event is None
                                   or not self._ready_event.is_set()),
                    "draining": self.draining})
            return True
        if path == "/stats" and method == "GET":
            self._send_json(writer, 200, self.stats())
            return True
        if method == "POST" and path in ("/run", "/sweep", "/dse") \
                and not self.ready:
            raise Shed(503, "draining" if self.draining
                       else "recovering")
        if path == "/run" and method == "POST":
            return await self._handle_run(body, writer)
        if path == "/sweep" and method == "POST":
            return self._handle_sweep(body, writer)
        if path == "/dse" and method == "POST":
            return self._handle_dse(body, writer)
        if path == "/jobs" and method == "GET":
            self._send_json(writer, 200, {
                "jobs": [j.summary() for j in self.jobs.list()]})
            return True
        if path.startswith("/jobs/"):
            return await self._handle_job(method, path, writer)
        if path == "/shutdown" and method == "POST":
            self._send_json(writer, 200, {"ok": True, "stopping": True},
                            keep=False)
            await writer.drain()
            self.request_shutdown()
            return False
        known = {"/healthz", "/readyz", "/stats", "/run", "/sweep",
                 "/dse", "/jobs", "/shutdown"}
        status = 405 if path in known else 404
        self._send_json(writer, status,
                        {"ok": False, "error": "%s %s" %
                         (_REASONS[status].lower(), path)})
        return True

    # ------------------------------------------------------------------
    # single runs: hot cache -> disk cache -> coalesce -> execute
    # ------------------------------------------------------------------
    async def _handle_run(self, body: bytes, writer) -> bool:
        obj = json.loads(body or b"{}")
        if not isinstance(obj, dict):
            raise WireError("body must be a JSON object")
        want_metrics = bool(obj.get("metrics", False))
        deadline_s = deadline_from_wire(obj)
        # accept {"spec": {...}, "metrics": bool} or a bare spec body
        wire = obj.get("spec", obj.get("run"))
        if wire is None and "benchmark" in obj:
            wire, want_metrics = obj, False
        spec = spec_from_wire(wire)
        record = await self._resolve(spec, want_metrics, deadline_s)
        if record.get("ok"):
            status = 200
        elif record.get("fail_kind") == "deadline":
            status = 504
            self.counters["deadline_expired"] += 1
            self._lifecycle(SERVE_DEADLINE, path="/run", expired=1)
        else:
            status = 500
        self._send_json(writer, status, record)
        return True

    async def _resolve(self, spec: RunSpec, want_metrics: bool,
                       deadline_s: float = 0.0) -> dict:
        key = spec_key(spec)
        ckey = (key, want_metrics)
        hot = self._hot.get(ckey)
        if hot is not None:
            self.counters["hot_hits"] += 1
            self._hot.move_to_end(ckey)
            return dict(hot, key=key, source="memory")
        if self.cache is not None:
            got = self.cache.get(key, with_metrics=want_metrics)
            if got is not None:
                record = _result_record(spec, got, True, want_metrics)
                self._hot_put(ckey, record)
                self.counters["disk_hits"] += 1
                return dict(record, key=key, source="disk")
        fut = self._inflight.get(ckey)
        if fut is not None:
            # followers join the leader's future; they neither count
            # against admission nor shorten the leader's deadline
            self.counters["coalesced"] += 1
            record = await asyncio.shield(fut)
            return dict(record, key=key, source="coalesced")
        if len(self._inflight) >= self.config.max_inflight_runs:
            raise Shed(429, "saturated")
        fut = self._loop.create_future()
        self._inflight[ckey] = fut
        self.counters["executions"] += 1
        try:
            record = await asyncio.to_thread(self._execute_single,
                                             spec, want_metrics,
                                             deadline_s)
            fut.set_result(record)
        except BaseException:
            # followers must always settle — on an unexpected
            # cancellation they get a retryable error record
            if not fut.done():
                fut.set_result({"ok": False, "cached": False,
                                "error": "execution cancelled",
                                "fail_kind": "error"})
            raise
        finally:
            self._inflight.pop(ckey, None)
        if record.get("ok"):
            self._hot_put(ckey, record)
        return dict(record, key=key, source="executed")

    def _execute_single(self, spec: RunSpec, want_metrics: bool,
                        deadline_s: float = 0.0) -> dict:
        cfg = self.config
        self._fire_on_execute([spec])
        deadline = (time.monotonic() + deadline_s) if deadline_s else None
        try:
            (result,) = run_sweep([spec], workers=cfg.workers,
                                  cache=self.cache,
                                  collect_metrics=want_metrics,
                                  task_timeout=cfg.task_timeout,
                                  retries=cfg.retries,
                                  on_error="return",
                                  deadline=deadline)
        except Exception as exc:      # infrastructure, not the spec
            return {"ok": False, "cached": False,
                    "error": "%s: %s" % (type(exc).__name__, exc),
                    "fail_kind": "error"}
        return _result_record(spec, result, False, want_metrics)

    def _lifecycle(self, kind: str, **data) -> None:
        """Emit one serve lifecycle TraceEvent onto the configured
        sink (cycle 0: these describe the service, not a machine)."""
        sink = self.config.lifecycle_sink
        if sink is None:
            return
        try:
            sink.emit(TraceEvent(0, kind, data=data))
        except Exception:
            pass                      # telemetry must never shed work

    def _fire_on_execute(self, specs: List[RunSpec]) -> None:
        if self.config.on_execute is not None:
            try:
                self.config.on_execute(list(specs))
            except Exception:
                pass

    def _hot_put(self, ckey, record: dict) -> None:
        cap = self.config.hot_capacity
        if cap <= 0 or not record.get("ok"):
            return
        self._hot[ckey] = record
        self._hot.move_to_end(ckey)
        while len(self._hot) > cap:
            self._hot.popitem(last=False)

    # ------------------------------------------------------------------
    # batch jobs: sweeps and DSE
    # ------------------------------------------------------------------
    def _admit_job(self) -> None:
        """429 when the executing set is full *and* the wait queue is
        too — a bounded backlog is useful, an unbounded one is a slow
        outage."""
        if (self._active_jobs >= self.config.max_active_jobs
                and self._waiting_jobs >= self.config.max_queued_jobs):
            raise Shed(429, "saturated")

    def _handle_sweep(self, body: bytes, writer) -> bool:
        obj = json.loads(body or b"{}")
        if not isinstance(obj, dict):
            raise WireError("body must be a JSON object")
        self._admit_job()
        deadline_s = deadline_from_wire(obj)
        specs = specs_from_wire(obj.get("specs"))
        job = self._submit_job("sweep", specs,
                               bool(obj.get("metrics", False)),
                               meta={"submitted_specs": len(specs)},
                               deadline_s=deadline_s)
        self._send_json(writer, 202, {"ok": True, "job": job.summary()})
        return True

    def _handle_dse(self, body: bytes, writer) -> bool:
        obj = json.loads(body or b"{}")
        if not isinstance(obj, dict):
            raise WireError("body must be a JSON object")
        self._admit_job()
        deadline_s = deadline_from_wire(obj)
        specs, meta = self._dse_specs(obj)
        job = self._submit_job("dse", specs,
                               bool(obj.get("metrics", False)),
                               meta=meta, deadline_s=deadline_s)
        self._send_json(writer, 202, {"ok": True, "job": job.summary()})
        return True

    def _dse_specs(self, obj: dict) -> Tuple[List[RunSpec], dict]:
        """A DSE submission is sugar for a sweep over a ConfigSpace.

        ``space`` is a preset *name* or an inline space dict — never a
        server-side file path; remote tenants don't get to open files.
        """
        import dataclasses as dc

        from repro.dse import ConfigSpace
        from repro.dse.space import default_space, paper_space
        space_arg = obj.get("space", "paper")
        if isinstance(space_arg, dict):
            dims = {f.name for f in dc.fields(ConfigSpace)}
            unknown = sorted(set(space_arg) - dims)
            if unknown:
                raise WireError("unknown space dimension(s): %s"
                                % ", ".join(unknown))
            try:
                # omitted dimensions keep the ConfigSpace defaults
                space = ConfigSpace(**{k: tuple(v) for k, v
                                       in space_arg.items()})
            except Exception as exc:
                raise WireError("bad space: %s" % exc)
        elif space_arg == "paper":
            space = paper_space()
        elif space_arg == "default":
            space = default_space()
        else:
            raise WireError("space must be 'paper', 'default' or an "
                            "inline space object")
        probe = spec_from_wire({
            "benchmark": obj.get("benchmark", "adpcm_enc"),
            "n_samples": obj.get("n_samples", 600),
            "seed": obj.get("seed", 20010618),
            "predictor_spec": "bimodal-2048",
            "engine": obj.get("engine", "interp"),
        })
        points = space.points()
        n_points = obj.get("n_points")
        if n_points is not None:
            if isinstance(n_points, bool) or not isinstance(n_points,
                                                           int) \
                    or n_points <= 0:
                raise WireError("n_points must be a positive integer")
            points = space.sample(min(n_points, len(points)), probe.seed)
        specs = [p.to_spec(probe.benchmark, probe.n_samples, probe.seed,
                           engine=probe.engine) for p in points]
        meta = {"space_digest": space.digest(),
                "benchmark": probe.benchmark,
                "n_samples": probe.n_samples, "seed": probe.seed,
                "points": [p.key() for p in points]}
        return specs, meta

    def _submit_job(self, kind: str, specs: List[RunSpec],
                    collect_metrics: bool, meta: Optional[dict] = None,
                    deadline_s: float = 0.0):
        distinct = list(dict.fromkeys(specs))
        deadline_at = (time.time() + deadline_s) if deadline_s else None
        job = self.jobs.create(kind, distinct,
                               collect_metrics=collect_metrics,
                               meta=meta, deadline_at=deadline_at)
        self.counters["jobs_submitted"] += 1
        self._spawn_job(job)
        return job

    def _spawn_job(self, job, resume: bool = False) -> None:
        task = self._loop.create_task(self._run_job(job, resume=resume))
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, job, resume: bool = False) -> None:
        # waiting/active accounting feeds _admit_job and /stats; the
        # semaphore bounds concurrent pool sweeps, not submissions
        self._waiting_jobs += 1
        await self._job_sem.acquire()
        self._waiting_jobs -= 1
        self._active_jobs += 1
        try:
            await self._run_job_held(job, resume)
        finally:
            self._active_jobs -= 1
            self._job_sem.release()

    async def _run_job_held(self, job, resume: bool) -> None:
        if resume:
            job.resume()
        else:
            job.start()
        before_done = job.n_done
        before_cached = job.n_cached
        before_deadline = job.n_deadline
        try:
            await asyncio.to_thread(self._execute_job, job)
        except Exception as exc:      # infrastructure, not a spec
            self.counters["jobs_failed"] += 1
            job.finish(error="%s: %s" % (type(exc).__name__, exc))
            log.error("job %s failed: %s: %s", job.id,
                      type(exc).__name__, exc)
            return
        self.counters["executions"] += \
            (job.n_done - before_done) - (job.n_cached - before_cached)
        expired = job.n_deadline - before_deadline
        if expired:
            self.counters["deadline_expired"] += expired
            self._lifecycle(SERVE_DEADLINE, job=job.id, expired=expired)
        job.finish()
        if job.state == "failed":
            self.counters["jobs_failed"] += 1
        log.info("job %s %s: %d specs, %d cached, %d failed, %.2fs",
                 job.id, job.state, job.n_total, job.n_cached,
                 job.n_failed, job.finished - job.started)

    def _execute_job(self, job) -> None:
        cfg = self.config
        pending = job.pending_specs()
        if not pending:
            return                    # fully replayed from the WAL
        if job.deadline_expired():
            # already past deadline: settle pending without touching
            # the pool (journaled as fail_kind="deadline" records)
            job.expire_pending()
            return
        self._fire_on_execute(pending)
        run_sweep(pending, workers=cfg.workers, cache=self.cache,
                  collect_metrics=job.collect_metrics,
                  task_timeout=cfg.task_timeout, retries=cfg.retries,
                  on_error="return", on_result=job.note_result,
                  deadline=job.monotonic_deadline())

    # ------------------------------------------------------------------
    # job introspection and event streaming
    # ------------------------------------------------------------------
    async def _handle_job(self, method: str, path: str, writer) -> bool:
        parts = [p for p in path.split("/") if p]    # jobs/<id>[/events]
        if method != "GET" or len(parts) not in (2, 3):
            self._send_json(writer, 404, {"ok": False,
                                          "error": "not found"})
            return True
        job = self.jobs.get(parts[1])
        if job is None:
            self._send_json(writer, 404, {"ok": False,
                                          "error": "no such job %s"
                                          % parts[1]})
            return True
        if len(parts) == 2:
            self._send_json(writer, 200, {"ok": True,
                                          "job": job.to_wire()})
            return True
        if parts[2] != "events":
            self._send_json(writer, 404, {"ok": False,
                                          "error": "not found"})
            return True
        await self._stream_events(job, writer)
        return False                  # streams close their connection

    async def _stream_events(self, job, writer) -> None:
        """Chunked JSONL: one progress event per line, until the job's
        terminal event has been delivered."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            while sent < len(job.events):
                line = json.dumps(job.events[sent]).encode("utf-8") \
                    + b"\n"
                writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
                sent += 1
            await writer.drain()
            if job.is_finished and sent >= len(job.events):
                break
            if self._stopping.is_set():
                break
            await asyncio.sleep(0.05)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        cache = None
        if self.cache is not None:
            cache = {"root": self.cache.root, "shards": self.cache.shards,
                     "hits": self.cache.hits, "misses": self.cache.misses,
                     "dropped": self.cache.dropped,
                     "evicted": self.cache.evicted,
                     "migrated": self.cache.migrated}
        return {
            "ok": True,
            "uptime": round(time.time() - self._started_at, 3),
            "ready": self.ready,
            "draining": self.draining,
            "state_dir": self.config.state_dir,
            "counters": dict(self.counters),
            "jobs": self.jobs.counts(),
            "active_jobs": self._active_jobs,
            "waiting_jobs": self._waiting_jobs,
            "inflight": len(self._inflight),
            "hot_entries": len(self._hot),
            "cache": cache,
            # live pool workers (children of this process); the chaos
            # smoke SIGKILLs one of these mid-sweep
            "worker_pids": sorted(p.pid for p in
                                  multiprocessing.active_children()
                                  if p.pid is not None),
        }


async def run_server(config: ServeConfig,
                     install_signals: bool = True) -> Server:
    """Build, bind and serve until shutdown; returns the served
    instance (useful for post-mortem counters in tests/smoke)."""
    import signal

    server = Server(config)
    await server.start()
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):
                break                 # non-main thread / platform
    await server.serve()
    return server
