"""The simulation-as-a-service daemon: asyncio front, pool back.

``repro serve`` turns the runner stack into a long-lived batch server.
Architecture, front to back:

* **HTTP layer** — a hand-rolled HTTP/1.1 loop over ``asyncio.
  start_server`` (stdlib only; the container has no aiohttp).  Plain
  JSON request/response bodies, keep-alive connections for load, and
  chunked JSONL for job event streams.
* **Hot layer** — a bounded in-memory LRU of wire-ready result
  records.  A warm request never touches the filesystem, which is what
  carries the ≥1000 cached requests/s load target
  (``tests/test_serve_load.py``).
* **Coalescing layer** — identical in-flight ``/run`` submissions are
  folded onto one execution, keyed by the runner's content-addressed
  spec hash ``(key, metrics?)``.  The N-1 followers await the leader's
  future; exactly one simulation happens (locked by the load test via
  the ``on_execute`` counter hook).
* **Cache layer** — the shared on-disk :class:`~repro.runner.
  ResultCache`, sharded by spec-hash prefix (``shards=256`` by
  default) so the daemon's pool workers and any sibling tenants don't
  contend on one directory.
* **Execution layer** — :func:`repro.runner.run_sweep` on worker
  threads, with the PR 4 crash machinery (``task_timeout``/
  ``retries``/``on_error="return"``, pool rebuild, serial fallback).
  A SIGKILLed worker therefore surfaces as a ``failed`` record inside
  a terminal job — never as a hung connection — and the daemon keeps
  serving throughout (``tests/test_serve_chaos.py``).

Nothing here logs tracebacks: every failure is rendered as one log
line and a structured HTTP error, which is what the CI serve-smoke
greps for.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import logging
import multiprocessing
import time
from collections import OrderedDict
from typing import Callable, List, Optional, Tuple

from repro.runner import ResultCache, RunSpec, run_sweep
from repro.serve.jobs import JobStore, _result_record
from repro.serve.protocol import (
    WireError,
    spec_from_wire,
    spec_key,
    specs_from_wire,
)

log = logging.getLogger("repro.serve")

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 500: "Internal Server Error"}

#: counter keys, in render order
COUNTER_KEYS = ("requests", "executions", "coalesced", "hot_hits",
                "disk_hits", "jobs_submitted", "jobs_failed", "errors")


@dataclasses.dataclass
class ServeConfig:
    """Everything the daemon needs, in one picklable bag."""

    host: str = "127.0.0.1"
    port: int = 8765                  # 0 = ephemeral (bound port is
    #                                   published on Server.port)
    cache_dir: Optional[str] = None   # None = no disk cache
    shards: int = 256
    max_bytes: Optional[int] = None
    workers: int = 0                  # pool size for sweep/DSE jobs
    task_timeout: Optional[float] = None
    retries: int = 0
    hot_capacity: int = 4096          # in-memory result records
    drain_timeout: float = 10.0       # grace for jobs at shutdown
    max_body: int = 32 << 20
    #: test/observer hook, called with the spec list just before every
    #: execution dispatch — the load suite counts pool executions here
    on_execute: Optional[Callable[[List[RunSpec]], None]] = None


class Server:
    """One daemon instance.  ``await start()`` binds, ``await serve()``
    runs until :meth:`request_shutdown` (signal, ``POST /shutdown`` or
    a test harness) and then drains gracefully."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.cache = (ResultCache(cfg.cache_dir, max_bytes=cfg.max_bytes,
                                  shards=cfg.shards)
                      if cfg.cache_dir else None)
        self.jobs = JobStore()
        self.counters = dict.fromkeys(COUNTER_KEYS, 0)
        self.port: Optional[int] = None
        self._hot: "OrderedDict[tuple, dict]" = OrderedDict()
        self._inflight: dict = {}
        self._job_tasks: set = set()
        self._conns: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("listening on %s:%d (workers=%d, cache=%s, shards=%d)",
                 self.config.host, self.port, self.config.workers,
                 self.config.cache_dir or "-", self.config.shards)

    async def serve(self) -> None:
        """Run until shutdown is requested, then drain and close."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        self._server.close()
        await self._server.wait_closed()
        if self._job_tasks:
            done, pending = await asyncio.wait(
                list(self._job_tasks), timeout=self.config.drain_timeout)
            for task in pending:
                task.cancel()
        for writer in list(self._conns):
            try:
                writer.close()
            except Exception:
                pass
        # let the handlers observe EOF and finish before asyncio.run
        # tears the loop down — a cancelled reader would log a spurious
        # traceback, and this daemon's log is asserted traceback-free
        for _ in range(200):
            if not self._conns:
                break
            await asyncio.sleep(0.01)
        log.info("shutdown complete: %d requests, %d executions, "
                 "%d coalesced, %d jobs failed",
                 self.counters["requests"], self.counters["executions"],
                 self.counters["coalesced"], self.counters["jobs_failed"])

    def request_shutdown(self) -> None:
        """Threadsafe + signal-safe stop trigger."""
        loop, stopping = self._loop, self._stopping
        if loop is None or stopping is None:
            return
        loop.call_soon_threadsafe(stopping.set)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_conn(self, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        self._conns.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                self.counters["requests"] += 1
                keep = await self._dispatch(method, path, body, writer)
                await writer.drain()
                if not keep or self._stopping.is_set():
                    break
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass                      # loop teardown: exit quietly
        except Exception as exc:
            self.counters["errors"] += 1
            log.error("connection handler error: %s: %s",
                      type(exc).__name__, exc)
        finally:
            self._conns.discard(writer)
            try:
                writer.close()
            except Exception:
                pass

    async def _read_request(self, reader) \
            -> Optional[Tuple[str, str, bytes]]:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        parts = line.split()
        if len(parts) < 2:
            return None
        method = parts[0].decode("latin-1").upper()
        path = parts[1].decode("latin-1").split("?", 1)[0]
        length = 0
        while True:
            header = await reader.readline()
            if header in (b"", b"\r\n", b"\n"):
                break
            name, _, value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    return None
        if length > self.config.max_body:
            raise WireError("request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    def _send_json(self, writer, status: int, obj: dict,
                   keep: bool = True) -> None:
        payload = json.dumps(obj).encode("utf-8") + b"\n"
        head = ("HTTP/1.1 %d %s\r\n"
                "Content-Type: application/json\r\n"
                "Content-Length: %d\r\n"
                "Connection: %s\r\n\r\n"
                % (status, _REASONS.get(status, "OK"), len(payload),
                   "keep-alive" if keep else "close"))
        writer.write(head.encode("latin-1") + payload)

    async def _dispatch(self, method: str, path: str, body: bytes,
                        writer) -> bool:
        """Route one request; returns whether to keep the connection."""
        try:
            return await self._route(method, path, body, writer)
        except WireError as exc:
            self._send_json(writer, 400, {"ok": False,
                                          "error": str(exc)})
            return True
        except json.JSONDecodeError as exc:
            self._send_json(writer, 400, {"ok": False,
                                          "error": "bad JSON: %s" % exc})
            return True
        except Exception as exc:
            self.counters["errors"] += 1
            log.error("error handling %s %s: %s: %s", method, path,
                      type(exc).__name__, exc)
            self._send_json(writer, 500,
                            {"ok": False,
                             "error": "%s: %s" % (type(exc).__name__,
                                                  exc)})
            return True

    async def _route(self, method: str, path: str, body: bytes,
                     writer) -> bool:
        if path == "/healthz" and method == "GET":
            self._send_json(writer, 200, {"ok": True})
            return True
        if path == "/stats" and method == "GET":
            self._send_json(writer, 200, self.stats())
            return True
        if path == "/run" and method == "POST":
            return await self._handle_run(body, writer)
        if path == "/sweep" and method == "POST":
            return self._handle_sweep(body, writer)
        if path == "/dse" and method == "POST":
            return self._handle_dse(body, writer)
        if path == "/jobs" and method == "GET":
            self._send_json(writer, 200, {
                "jobs": [j.summary() for j in self.jobs.list()]})
            return True
        if path.startswith("/jobs/"):
            return await self._handle_job(method, path, writer)
        if path == "/shutdown" and method == "POST":
            self._send_json(writer, 200, {"ok": True, "stopping": True},
                            keep=False)
            await writer.drain()
            self.request_shutdown()
            return False
        known = {"/healthz", "/stats", "/run", "/sweep", "/dse",
                 "/jobs", "/shutdown"}
        status = 405 if path in known else 404
        self._send_json(writer, status,
                        {"ok": False, "error": "%s %s" %
                         (_REASONS[status].lower(), path)})
        return True

    # ------------------------------------------------------------------
    # single runs: hot cache -> disk cache -> coalesce -> execute
    # ------------------------------------------------------------------
    async def _handle_run(self, body: bytes, writer) -> bool:
        obj = json.loads(body or b"{}")
        if not isinstance(obj, dict):
            raise WireError("body must be a JSON object")
        want_metrics = bool(obj.get("metrics", False))
        # accept {"spec": {...}, "metrics": bool} or a bare spec body
        wire = obj.get("spec", obj.get("run"))
        if wire is None and "benchmark" in obj:
            wire, want_metrics = obj, False
        spec = spec_from_wire(wire)
        record = await self._resolve(spec, want_metrics)
        self._send_json(writer, 200 if record.get("ok") else 500, record)
        return True

    async def _resolve(self, spec: RunSpec, want_metrics: bool) -> dict:
        key = spec_key(spec)
        ckey = (key, want_metrics)
        hot = self._hot.get(ckey)
        if hot is not None:
            self.counters["hot_hits"] += 1
            self._hot.move_to_end(ckey)
            return dict(hot, key=key, source="memory")
        if self.cache is not None:
            got = self.cache.get(key, with_metrics=want_metrics)
            if got is not None:
                record = _result_record(spec, got, True, want_metrics)
                self._hot_put(ckey, record)
                self.counters["disk_hits"] += 1
                return dict(record, key=key, source="disk")
        fut = self._inflight.get(ckey)
        if fut is not None:
            self.counters["coalesced"] += 1
            record = await asyncio.shield(fut)
            return dict(record, key=key, source="coalesced")
        fut = self._loop.create_future()
        self._inflight[ckey] = fut
        self.counters["executions"] += 1
        try:
            record = await asyncio.to_thread(self._execute_single,
                                             spec, want_metrics)
            fut.set_result(record)
        except BaseException:
            # followers must always settle — on an unexpected
            # cancellation they get a retryable error record
            if not fut.done():
                fut.set_result({"ok": False, "cached": False,
                                "error": "execution cancelled",
                                "fail_kind": "error"})
            raise
        finally:
            self._inflight.pop(ckey, None)
        if record.get("ok"):
            self._hot_put(ckey, record)
        return dict(record, key=key, source="executed")

    def _execute_single(self, spec: RunSpec, want_metrics: bool) -> dict:
        cfg = self.config
        self._fire_on_execute([spec])
        try:
            (result,) = run_sweep([spec], workers=cfg.workers,
                                  cache=self.cache,
                                  collect_metrics=want_metrics,
                                  task_timeout=cfg.task_timeout,
                                  retries=cfg.retries,
                                  on_error="return")
        except Exception as exc:      # infrastructure, not the spec
            return {"ok": False, "cached": False,
                    "error": "%s: %s" % (type(exc).__name__, exc),
                    "fail_kind": "error"}
        return _result_record(spec, result, False, want_metrics)

    def _fire_on_execute(self, specs: List[RunSpec]) -> None:
        if self.config.on_execute is not None:
            try:
                self.config.on_execute(list(specs))
            except Exception:
                pass

    def _hot_put(self, ckey, record: dict) -> None:
        cap = self.config.hot_capacity
        if cap <= 0 or not record.get("ok"):
            return
        self._hot[ckey] = record
        self._hot.move_to_end(ckey)
        while len(self._hot) > cap:
            self._hot.popitem(last=False)

    # ------------------------------------------------------------------
    # batch jobs: sweeps and DSE
    # ------------------------------------------------------------------
    def _handle_sweep(self, body: bytes, writer) -> bool:
        obj = json.loads(body or b"{}")
        if not isinstance(obj, dict):
            raise WireError("body must be a JSON object")
        specs = specs_from_wire(obj.get("specs"))
        job = self._submit_job("sweep", specs,
                               bool(obj.get("metrics", False)),
                               meta={"submitted_specs": len(specs)})
        self._send_json(writer, 202, {"ok": True, "job": job.summary()})
        return True

    def _handle_dse(self, body: bytes, writer) -> bool:
        obj = json.loads(body or b"{}")
        if not isinstance(obj, dict):
            raise WireError("body must be a JSON object")
        specs, meta = self._dse_specs(obj)
        job = self._submit_job("dse", specs,
                               bool(obj.get("metrics", False)),
                               meta=meta)
        self._send_json(writer, 202, {"ok": True, "job": job.summary()})
        return True

    def _dse_specs(self, obj: dict) -> Tuple[List[RunSpec], dict]:
        """A DSE submission is sugar for a sweep over a ConfigSpace.

        ``space`` is a preset *name* or an inline space dict — never a
        server-side file path; remote tenants don't get to open files.
        """
        import dataclasses as dc

        from repro.dse import ConfigSpace
        from repro.dse.space import default_space, paper_space
        space_arg = obj.get("space", "paper")
        if isinstance(space_arg, dict):
            dims = {f.name for f in dc.fields(ConfigSpace)}
            unknown = sorted(set(space_arg) - dims)
            if unknown:
                raise WireError("unknown space dimension(s): %s"
                                % ", ".join(unknown))
            try:
                # omitted dimensions keep the ConfigSpace defaults
                space = ConfigSpace(**{k: tuple(v) for k, v
                                       in space_arg.items()})
            except Exception as exc:
                raise WireError("bad space: %s" % exc)
        elif space_arg == "paper":
            space = paper_space()
        elif space_arg == "default":
            space = default_space()
        else:
            raise WireError("space must be 'paper', 'default' or an "
                            "inline space object")
        probe = spec_from_wire({
            "benchmark": obj.get("benchmark", "adpcm_enc"),
            "n_samples": obj.get("n_samples", 600),
            "seed": obj.get("seed", 20010618),
            "predictor_spec": "bimodal-2048",
            "engine": obj.get("engine", "interp"),
        })
        points = space.points()
        n_points = obj.get("n_points")
        if n_points is not None:
            if isinstance(n_points, bool) or not isinstance(n_points,
                                                           int) \
                    or n_points <= 0:
                raise WireError("n_points must be a positive integer")
            points = space.sample(min(n_points, len(points)), probe.seed)
        specs = [p.to_spec(probe.benchmark, probe.n_samples, probe.seed,
                           engine=probe.engine) for p in points]
        meta = {"space_digest": space.digest(),
                "benchmark": probe.benchmark,
                "n_samples": probe.n_samples, "seed": probe.seed,
                "points": [p.key() for p in points]}
        return specs, meta

    def _submit_job(self, kind: str, specs: List[RunSpec],
                    collect_metrics: bool, meta: Optional[dict] = None):
        distinct = list(dict.fromkeys(specs))
        job = self.jobs.create(kind, distinct,
                               collect_metrics=collect_metrics,
                               meta=meta)
        self.counters["jobs_submitted"] += 1
        task = self._loop.create_task(self._run_job(job))
        self._job_tasks.add(task)
        task.add_done_callback(self._job_tasks.discard)
        return job

    async def _run_job(self, job) -> None:
        job.start()
        try:
            await asyncio.to_thread(self._execute_job, job)
        except Exception as exc:      # infrastructure, not a spec
            self.counters["jobs_failed"] += 1
            job.finish(error="%s: %s" % (type(exc).__name__, exc))
            log.error("job %s failed: %s: %s", job.id,
                      type(exc).__name__, exc)
            return
        self.counters["executions"] += job.n_done - job.n_cached
        job.finish()
        if job.state == "failed":
            self.counters["jobs_failed"] += 1
        log.info("job %s %s: %d specs, %d cached, %d failed, %.2fs",
                 job.id, job.state, job.n_total, job.n_cached,
                 job.n_failed, job.finished - job.started)

    def _execute_job(self, job) -> None:
        cfg = self.config
        self._fire_on_execute(job.specs)
        run_sweep(job.specs, workers=cfg.workers, cache=self.cache,
                  collect_metrics=job.collect_metrics,
                  task_timeout=cfg.task_timeout, retries=cfg.retries,
                  on_error="return", on_result=job.note_result)

    # ------------------------------------------------------------------
    # job introspection and event streaming
    # ------------------------------------------------------------------
    async def _handle_job(self, method: str, path: str, writer) -> bool:
        parts = [p for p in path.split("/") if p]    # jobs/<id>[/events]
        if method != "GET" or len(parts) not in (2, 3):
            self._send_json(writer, 404, {"ok": False,
                                          "error": "not found"})
            return True
        job = self.jobs.get(parts[1])
        if job is None:
            self._send_json(writer, 404, {"ok": False,
                                          "error": "no such job %s"
                                          % parts[1]})
            return True
        if len(parts) == 2:
            self._send_json(writer, 200, {"ok": True,
                                          "job": job.to_wire()})
            return True
        if parts[2] != "events":
            self._send_json(writer, 404, {"ok": False,
                                          "error": "not found"})
            return True
        await self._stream_events(job, writer)
        return False                  # streams close their connection

    async def _stream_events(self, job, writer) -> None:
        """Chunked JSONL: one progress event per line, until the job's
        terminal event has been delivered."""
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Transfer-Encoding: chunked\r\n"
                     b"Connection: close\r\n\r\n")
        sent = 0
        while True:
            while sent < len(job.events):
                line = json.dumps(job.events[sent]).encode("utf-8") \
                    + b"\n"
                writer.write(b"%x\r\n" % len(line) + line + b"\r\n")
                sent += 1
            await writer.drain()
            if job.is_finished and sent >= len(job.events):
                break
            if self._stopping.is_set():
                break
            await asyncio.sleep(0.05)
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        cache = None
        if self.cache is not None:
            cache = {"root": self.cache.root, "shards": self.cache.shards,
                     "hits": self.cache.hits, "misses": self.cache.misses,
                     "dropped": self.cache.dropped,
                     "evicted": self.cache.evicted,
                     "migrated": self.cache.migrated}
        return {
            "ok": True,
            "uptime": round(time.time() - self._started_at, 3),
            "counters": dict(self.counters),
            "jobs": self.jobs.counts(),
            "inflight": len(self._inflight),
            "hot_entries": len(self._hot),
            "cache": cache,
            # live pool workers (children of this process); the chaos
            # smoke SIGKILLs one of these mid-sweep
            "worker_pids": sorted(p.pid for p in
                                  multiprocessing.active_children()
                                  if p.pid is not None),
        }


async def run_server(config: ServeConfig,
                     install_signals: bool = True) -> Server:
    """Build, bind and serve until shutdown; returns the served
    instance (useful for post-mortem counters in tests/smoke)."""
    import signal

    server = Server(config)
    await server.start()
    if install_signals:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):
                break                 # non-main thread / platform
    await server.serve()
    return server
