"""Job records and the in-daemon job store.

A *job* is one asynchronous batch submission — a sweep or a DSE
evaluation — executing through :func:`repro.runner.run_sweep` on a
worker thread while the event loop keeps serving.  The record is the
single source of truth a client can poll (``GET /jobs/<id>``) or
stream (``GET /jobs/<id>/events``): per-spec progress events are
appended by the runner's ``on_result`` hook as each distinct spec
settles, and the terminal state distinguishes *done* (every spec
produced verified stats) from *failed* (at least one spec ended as a
quarantined :class:`~repro.runner.FailedResult` — a SIGKILLed worker,
a hang past ``task_timeout``, a poisoned spec).  A failed job is a
first-class record, never a hung connection: the failure rides in the
job body with the same shape the chaos suite asserts on.

Threading model: mutation happens append-only from one producer (the
job's worker thread); readers on the event loop see a consistent
prefix because list appends are atomic and ``state`` flips to a
terminal value only *after* the final event is appended.  Streamers
poll the event list — no locks shared with the simulation path.
"""

from __future__ import annotations

import dataclasses
import itertools
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.runner import FailedResult, RunSpec
from repro.serve.protocol import spec_to_wire

JOB_STATES = ("pending", "running", "done", "failed")


def _result_record(spec: RunSpec, result, cached: bool,
                   collect_metrics: bool) -> dict:
    """Wire-shaped outcome of one spec (success or quarantined)."""
    rec = {"spec": spec_to_wire(spec), "cached": bool(cached)}
    if isinstance(result, FailedResult):
        rec["ok"] = False
        rec["error"] = result.error
        rec["fail_kind"] = result.kind
        rec["attempts"] = result.attempts
        return rec
    if collect_metrics:
        stats, metrics = result
    else:
        stats, metrics = result, None
    rec["ok"] = True
    rec["stats"] = dataclasses.asdict(stats)
    if metrics is not None:
        # telemetry over the wire: the run's event counters ride on
        # every progress record (full tables stay in the result cache)
        rec["counters"] = metrics.get("counters", {})
    return rec


class Job:
    """One batch submission and its streamable progress feed."""

    def __init__(self, job_id: str, kind: str, specs: List[RunSpec],
                 collect_metrics: bool = False,
                 meta: Optional[dict] = None) -> None:
        self.id = job_id
        self.kind = kind                      # "sweep" | "dse"
        self.specs = specs                    # distinct, input order
        self.collect_metrics = collect_metrics
        self.meta = meta or {}
        self.state = "pending"
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.error: Optional[str] = None      # infrastructure failure
        self.n_total = len(specs)
        self.n_done = 0
        self.n_cached = 0
        self.n_failed = 0
        self.results: List[Optional[dict]] = [None] * len(specs)
        self.events: List[dict] = []
        self._index = {spec: i for i, spec in enumerate(specs)}

    # -- producer side (worker thread) ---------------------------------
    def start(self) -> None:
        self.state = "running"
        self.started = time.time()
        self._emit({"kind": "start", "job": self.id,
                    "n_specs": self.n_total})

    def note_result(self, spec: RunSpec, result, cached: bool) -> None:
        """``run_sweep`` progress hook: record + publish one outcome."""
        i = self._index.get(spec)
        if i is None or self.results[i] is not None:
            return                            # unknown or duplicate fire
        rec = _result_record(spec, result, cached, self.collect_metrics)
        self.results[i] = rec
        self.n_done += 1
        self.n_cached += 1 if cached else 0
        self.n_failed += 0 if rec["ok"] else 1
        ev = {"kind": "result", "i": i, "ok": rec["ok"],
              "cached": rec["cached"]}
        if rec["ok"]:
            ev["cycles"] = rec["stats"]["cycles"]
            if "counters" in rec:
                ev["counters"] = rec["counters"]
        else:
            ev["error"] = rec["error"]
            ev["fail_kind"] = rec["fail_kind"]
        self._emit(ev)

    def finish(self, error: Optional[str] = None) -> None:
        """Terminal transition; the ``end`` event precedes the flip so
        streamers that observe a terminal state have the full feed."""
        self.finished = time.time()
        self.error = error
        state = "failed" if (error or self.n_failed) else "done"
        self._emit({"kind": "end", "state": state,
                    "n_done": self.n_done, "n_failed": self.n_failed,
                    "n_cached": self.n_cached, "error": error})
        self.state = state

    def _emit(self, event: dict) -> None:
        event["seq"] = len(self.events)
        event["t"] = round(time.time() - self.submitted, 6)
        self.events.append(event)

    # -- reader side (event loop) --------------------------------------
    @property
    def is_finished(self) -> bool:
        return self.state in ("done", "failed")

    def summary(self) -> dict:
        return {
            "id": self.id, "kind": self.kind, "state": self.state,
            "n_total": self.n_total, "n_done": self.n_done,
            "n_cached": self.n_cached, "n_failed": self.n_failed,
            "submitted": self.submitted, "started": self.started,
            "finished": self.finished, "error": self.error,
        }

    def to_wire(self) -> dict:
        out = self.summary()
        out["meta"] = self.meta
        out["results"] = self.results
        return out


class JobStore:
    """Monotonic ids, bounded retention of finished jobs."""

    def __init__(self, keep_finished: int = 1024) -> None:
        self.keep_finished = keep_finished
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)

    def create(self, kind: str, specs: List[RunSpec],
               collect_metrics: bool = False,
               meta: Optional[dict] = None) -> Job:
        job = Job("job-%06d" % next(self._ids), kind, specs,
                  collect_metrics=collect_metrics, meta=meta)
        self._jobs[job.id] = job
        self._prune()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        counts = dict.fromkeys(JOB_STATES, 0)
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def _prune(self) -> None:
        finished = [j for j in self._jobs.values() if j.is_finished]
        for job in finished[: max(0, len(finished) - self.keep_finished)]:
            self._jobs.pop(job.id, None)
