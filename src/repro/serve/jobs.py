"""Job records, the in-daemon job store, and its write-ahead log.

A *job* is one asynchronous batch submission — a sweep or a DSE
evaluation — executing through :func:`repro.runner.run_sweep` on a
worker thread while the event loop keeps serving.  The record is the
single source of truth a client can poll (``GET /jobs/<id>``) or
stream (``GET /jobs/<id>/events``): per-spec progress events are
appended by the runner's ``on_result`` hook as each distinct spec
settles, and the terminal state distinguishes *done* (every spec
produced verified stats) from *failed* (at least one spec ended as a
quarantined :class:`~repro.runner.FailedResult` — a SIGKILLed worker,
a hang past ``task_timeout``, an expired deadline, a poisoned spec).
A failed job is a first-class record, never a hung connection: the
failure rides in the job body with the same shape the chaos suite
asserts on.

**Durability** (PR 9): with a ``state_dir`` every job owns an
append-only fsync'd JSONL write-ahead log (the shared
:mod:`repro.wal` helpers, extracted from the PR 3 DSE journal).
Three record kinds::

    {"kind": "meta",   ...job identity: specs, deadline, metadata...}
    {"kind": "result", "i": <spec index>, "rec": <wire-shaped outcome>}
    {"kind": "end",    "state": "done"|"failed", "error": ...}

Every ``result`` is on disk *before* the in-memory record updates, so
a crashed daemon loses at most the one record that was mid-write (the
WAL's torn tail, dropped and repaired on load).  :meth:`JobStore.
recover` replays each log into a job: settled specs — successes *and*
quarantined failures — keep their outcome and are never re-executed
or re-journaled (a failed spec settles as exactly one ``failed``
record, across any number of restarts), while unsettled specs are
re-enqueued through :meth:`Job.pending_specs`.  Because the result
cache sits underneath, the re-enqueued specs that finished before the
crash but after their journal write resolve as cache hits — restart
completes a job with zero recomputation.

Threading model: mutation happens append-only from one producer (the
job's worker thread); readers on the event loop see a consistent
prefix because list appends are atomic and ``state`` flips to a
terminal value only *after* the final event is appended.  Streamers
poll the event list — no locks shared with the simulation path.
"""

from __future__ import annotations

import dataclasses
import itertools
import logging
import os
import re
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.runner import FailedResult, RunSpec
from repro.serve.protocol import spec_from_wire, spec_to_wire
from repro.wal import JsonlWal

log = logging.getLogger("repro.serve")

JOB_STATES = ("pending", "running", "done", "failed")

JOB_WAL_VERSION = 1

_ID_RE = re.compile(r"^job-(\d{6,})$")


def _result_record(spec: RunSpec, result, cached: bool,
                   collect_metrics: bool) -> dict:
    """Wire-shaped outcome of one spec (success or quarantined)."""
    rec = {"spec": spec_to_wire(spec), "cached": bool(cached)}
    if isinstance(result, FailedResult):
        rec["ok"] = False
        rec["error"] = result.error
        rec["fail_kind"] = result.kind
        rec["attempts"] = result.attempts
        return rec
    if collect_metrics:
        stats, metrics = result
    else:
        stats, metrics = result, None
    rec["ok"] = True
    rec["stats"] = dataclasses.asdict(stats)
    if metrics is not None:
        # telemetry over the wire: the run's event counters ride on
        # every progress record (full tables stay in the result cache)
        rec["counters"] = metrics.get("counters", {})
    return rec


class Job:
    """One batch submission and its streamable progress feed."""

    def __init__(self, job_id: str, kind: str, specs: List[RunSpec],
                 collect_metrics: bool = False,
                 meta: Optional[dict] = None,
                 wal: Optional[JsonlWal] = None,
                 deadline_at: Optional[float] = None) -> None:
        self.id = job_id
        self.kind = kind                      # "sweep" | "dse"
        self.specs = specs                    # distinct, input order
        self.collect_metrics = collect_metrics
        self.meta = meta or {}
        self.state = "pending"
        self.submitted = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.error: Optional[str] = None      # infrastructure failure
        #: wall-clock instant after which pending work expires
        #: (``deadline_ms`` on the submission); wall time so the
        #: deadline survives a restart
        self.deadline_at = deadline_at
        self.n_total = len(specs)
        self.n_done = 0
        self.n_cached = 0
        self.n_failed = 0
        self.n_deadline = 0                   # fail_kind == "deadline"
        self.n_recovered = 0                  # results replayed from WAL
        self.results: List[Optional[dict]] = [None] * len(specs)
        self.events: List[dict] = []
        self._index = {spec: i for i, spec in enumerate(specs)}
        self._wal = wal

    # -- durability -----------------------------------------------------
    def wal_meta(self) -> dict:
        """The WAL's first record: everything replay needs."""
        return {
            "kind": "meta", "version": JOB_WAL_VERSION,
            "job": self.id, "job_kind": self.kind,
            "specs": [spec_to_wire(s) for s in self.specs],
            "collect_metrics": self.collect_metrics,
            "meta": self.meta, "submitted": self.submitted,
            "deadline_at": self.deadline_at,
        }

    def _journal(self, record: dict) -> None:
        """Durably append one WAL record; a sick disk degrades the job
        to in-memory-only (logged once) rather than failing the sweep."""
        if self._wal is None:
            return
        try:
            self._wal.append(record)
        except Exception as exc:
            log.error("job %s WAL write failed (%s: %s); continuing "
                      "without durability", self.id,
                      type(exc).__name__, exc)
            self._wal = None

    def close_wal(self) -> None:
        if self._wal is not None:
            try:
                self._wal.close()
            except Exception:
                pass
            self._wal = None

    def monotonic_deadline(self) -> Optional[float]:
        """The job deadline as an absolute ``time.monotonic()`` value
        for :func:`repro.runner.map_specs` — computed at call time so
        it stays correct across a restart (wall clock is the durable
        representation)."""
        if self.deadline_at is None:
            return None
        return time.monotonic() + (self.deadline_at - time.time())

    def deadline_expired(self) -> bool:
        return self.deadline_at is not None \
            and time.time() >= self.deadline_at

    def pending_specs(self) -> List[RunSpec]:
        """Specs without a settled outcome — the unit of resumption."""
        return [spec for i, spec in enumerate(self.specs)
                if self.results[i] is None]

    # -- producer side (worker thread) ---------------------------------
    def start(self) -> None:
        self.state = "running"
        self.started = time.time()
        self._emit({"kind": "start", "job": self.id,
                    "n_specs": self.n_total})

    def resume(self) -> None:
        """Continue a WAL-recovered job: the replayed results stay
        settled; only :meth:`pending_specs` re-enter the pool."""
        self.state = "running"
        self.started = time.time()
        self._emit({"kind": "resume", "job": self.id,
                    "recovered": self.n_done,
                    "pending": self.n_total - self.n_done})

    def note_result(self, spec: RunSpec, result, cached: bool) -> None:
        """``run_sweep`` progress hook: journal, record + publish one
        outcome.  The WAL write precedes the in-memory update — a
        result the feed shows is a result a restart will replay."""
        i = self._index.get(spec)
        if i is None or self.results[i] is not None:
            return                            # unknown or duplicate fire
        rec = _result_record(spec, result, cached, self.collect_metrics)
        self._journal({"kind": "result", "i": i, "rec": rec})
        self._settle(i, rec)

    def expire_pending(self) -> int:
        """Settle every pending spec as a journaled ``deadline``
        failure (the job's deadline passed before they could run);
        returns how many were expired."""
        expired = 0
        for i, spec in enumerate(self.specs):
            if self.results[i] is None:
                self.note_result(
                    spec,
                    FailedResult(spec, "deadline expired before "
                                 "execution", "deadline", 0),
                    False)
                expired += 1
        return expired

    def _settle(self, i: int, rec: dict,
                recovered: bool = False) -> None:
        self.results[i] = rec
        self.n_done += 1
        self.n_cached += 1 if rec["cached"] else 0
        self.n_failed += 0 if rec["ok"] else 1
        if not rec["ok"] and rec.get("fail_kind") == "deadline":
            self.n_deadline += 1
        ev = {"kind": "result", "i": i, "ok": rec["ok"],
              "cached": rec["cached"]}
        if recovered:
            ev["recovered"] = True
        if rec["ok"]:
            ev["cycles"] = rec["stats"]["cycles"]
            if "counters" in rec:
                ev["counters"] = rec["counters"]
        else:
            ev["error"] = rec["error"]
            ev["fail_kind"] = rec["fail_kind"]
        self._emit(ev)

    def finish(self, error: Optional[str] = None) -> None:
        """Terminal transition; the ``end`` event precedes the flip so
        streamers that observe a terminal state have the full feed."""
        self.finished = time.time()
        self.error = error
        state = "failed" if (error or self.n_failed) else "done"
        self._journal({"kind": "end", "state": state, "error": error})
        self.close_wal()
        self._emit({"kind": "end", "state": state,
                    "n_done": self.n_done, "n_failed": self.n_failed,
                    "n_cached": self.n_cached, "error": error})
        self.state = state

    def _emit(self, event: dict) -> None:
        event["seq"] = len(self.events)
        event["t"] = round(time.time() - self.submitted, 6)
        self.events.append(event)

    # -- recovery -------------------------------------------------------
    @classmethod
    def replay(cls, records: List[dict],
               wal: Optional[JsonlWal] = None) -> Optional["Job"]:
        """Rebuild a job from its WAL records (as loaded by
        :func:`repro.wal.load_jsonl`); None when the log holds no
        usable ``meta`` record.

        Replay is idempotent and side-effect free: nothing is
        re-journaled (a settled spec — success or failure — keeps its
        exactly-one record across any number of restarts) and the
        event feed is rebuilt deterministically with ``recovered``
        markers.  Event timestamps are rebuilt relative to *this*
        process; the WAL persists outcomes, not the original feed.
        """
        meta_rec = None
        for rec in records:
            if rec.get("kind") == "meta":
                meta_rec = rec
                break
        if meta_rec is None:
            return None
        try:
            specs = [spec_from_wire(w) for w in meta_rec["specs"]]
        except Exception:
            return None
        job = cls(meta_rec["job"], meta_rec.get("job_kind", "sweep"),
                  specs,
                  collect_metrics=bool(meta_rec.get("collect_metrics")),
                  meta=meta_rec.get("meta") or {},
                  wal=wal,
                  deadline_at=meta_rec.get("deadline_at"))
        job.submitted = meta_rec.get("submitted", job.submitted)
        job._emit({"kind": "start", "job": job.id,
                   "n_specs": job.n_total})
        end_rec = None
        for rec in records:
            kind = rec.get("kind")
            if kind == "result":
                i = rec.get("i")
                payload = rec.get("rec")
                if not isinstance(i, int) or not 0 <= i < job.n_total \
                        or not isinstance(payload, dict) \
                        or job.results[i] is not None:
                    continue          # corrupt or duplicate: skip
                job._settle(i, payload, recovered=True)
                job.n_recovered += 1
            elif kind == "end":
                end_rec = rec
        if end_rec is not None:
            job.finished = time.time()
            job.error = end_rec.get("error")
            state = end_rec.get("state")
            if state not in ("done", "failed"):
                state = "failed" if (job.error or job.n_failed) \
                    else "done"
            job._emit({"kind": "end", "state": state,
                       "n_done": job.n_done, "n_failed": job.n_failed,
                       "n_cached": job.n_cached, "error": job.error,
                       "recovered": True})
            job.state = state
            job.close_wal()
        return job

    # -- reader side (event loop) --------------------------------------
    @property
    def is_finished(self) -> bool:
        return self.state in ("done", "failed")

    def summary(self) -> dict:
        return {
            "id": self.id, "kind": self.kind, "state": self.state,
            "n_total": self.n_total, "n_done": self.n_done,
            "n_cached": self.n_cached, "n_failed": self.n_failed,
            "n_recovered": self.n_recovered,
            "deadline_at": self.deadline_at,
            "submitted": self.submitted, "started": self.started,
            "finished": self.finished, "error": self.error,
        }

    def to_wire(self) -> dict:
        out = self.summary()
        out["meta"] = self.meta
        out["results"] = self.results
        return out


class JobStore:
    """Monotonic ids, bounded retention of finished jobs, and (with a
    ``state_dir``) one write-ahead log per job under
    ``<state_dir>/jobs/``."""

    def __init__(self, state_dir: Optional[str] = None,
                 keep_finished: int = 1024) -> None:
        self.state_dir = state_dir
        self.keep_finished = keep_finished
        self.wal_dropped = 0          # torn/corrupt WAL lines at recover
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)

    def _jobs_dir(self) -> str:
        return os.path.join(self.state_dir, "jobs")

    def _wal_path(self, job_id: str) -> str:
        return os.path.join(self._jobs_dir(), job_id + ".jsonl")

    def create(self, kind: str, specs: List[RunSpec],
               collect_metrics: bool = False,
               meta: Optional[dict] = None,
               deadline_at: Optional[float] = None) -> Job:
        job_id = "job-%06d" % next(self._ids)
        wal = None
        if self.state_dir is not None:
            try:
                wal = JsonlWal(self._wal_path(job_id)).open()
            except Exception as exc:
                log.error("job %s WAL open failed (%s: %s); job is "
                          "in-memory only", job_id,
                          type(exc).__name__, exc)
                wal = None
        job = Job(job_id, kind, specs, collect_metrics=collect_metrics,
                  meta=meta, wal=wal, deadline_at=deadline_at)
        if wal is not None:
            job._journal(job.wal_meta())
        self._jobs[job.id] = job
        self._prune()
        return job

    def recover(self) -> List[Job]:
        """Replay every WAL under the state dir into the store.

        Returns the jobs that are *not* terminal — the server
        re-enqueues their :meth:`Job.pending_specs`.  Idempotent by
        construction: replay appends nothing, so a second recovery
        (double restart) reads byte-identical logs and rebuilds the
        same jobs.  Torn tails are counted in :attr:`wal_dropped` and
        repaired before the job's WAL reopens for append.
        """
        if self.state_dir is None:
            return []
        try:
            names = sorted(os.listdir(self._jobs_dir()))
        except FileNotFoundError:
            return []
        unfinished: List[Job] = []
        max_id = 0
        for name in names:
            if not name.endswith(".jsonl"):
                continue
            job_id = name[:-len(".jsonl")]
            m = _ID_RE.match(job_id)
            if m:
                max_id = max(max_id, int(m.group(1)))
            wal = JsonlWal(self._wal_path(job_id))
            records = wal.load()
            self.wal_dropped += wal.dropped
            terminal = any(r.get("kind") == "end" for r in records)
            if not terminal:
                # reopen for append (repairs the torn tail) so the
                # resumed job journals onto its own log
                try:
                    wal.open()
                except Exception:
                    wal = None
            job = Job.replay(records, wal=None if terminal else wal)
            if job is None:
                if wal is not None and wal.is_open:
                    wal.close()
                log.error("state dir WAL %s is unreadable; skipped",
                          name)
                continue
            self._jobs[job.id] = job
            if not job.is_finished:
                unfinished.append(job)
        # ids keep counting past everything ever journaled, so a
        # recovered job and a fresh submission can never collide
        self._ids = itertools.count(max_id + 1)
        self._prune()
        return unfinished

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        counts = dict.fromkeys(JOB_STATES, 0)
        for job in self._jobs.values():
            counts[job.state] += 1
        return counts

    def close(self) -> None:
        """Release every open WAL handle (drain/shutdown path); all
        records are already fsynced, so this loses nothing."""
        for job in self._jobs.values():
            job.close_wal()

    def _prune(self) -> None:
        finished = [j for j in self._jobs.values() if j.is_finished]
        for job in finished[: max(0, len(finished) - self.keep_finished)]:
            self._jobs.pop(job.id, None)
            if self.state_dir is not None:
                # retention is the contract: a pruned job's WAL goes
                # too, keeping the state dir bounded
                try:
                    os.remove(self._wal_path(job.id))
                except OSError:
                    pass
