"""Wire format of the simulation service.

One rule governs the whole API: **the wire identity of a run is the
runner's existing content-addressed cache key** (:func:`repro.runner.
key_for_spec`).  Two submissions whose JSON bodies decode to equal
:class:`~repro.runner.RunSpec`\\ s therefore share a spec hash, a cache
shard, an in-flight coalescing slot and (with ``engine`` deliberately
excluded from the key, the PR 5 invariant) one simulation — no matter
which engine either request asked for.  ``tests/test_serve_protocol.py``
locks this with hypothesis at the API boundary.

:func:`spec_from_wire` is strict: unknown fields, missing required
fields and mistyped values raise :class:`WireError` (rendered as HTTP
400) instead of being guessed at — a service accepting sweeps from
many tenants must not silently coerce one tenant's typo into another
tenant's cache entry.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.runner import RunSpec, key_for_spec, shard_of
from repro.workloads import WORKLOAD_NAMES

_REQUIRED = ("benchmark", "n_samples", "seed", "predictor_spec")
_ENGINES = ("interp", "blocks", "superblocks")
_BDT_UPDATES = ("commit", "mem", "execute")
_BACKENDS = ("inorder", "ooo")


class WireError(ValueError):
    """A malformed request body (HTTP 400, message safe to echo)."""


#: JSON-level type constraint per RunSpec field, taken from a probe
#: instance (field annotations are strings under future-annotations).
#: ``bool`` is checked before ``int`` in the decoder because bool is an
#: int subclass: ``true`` must not pass for ``n_samples`` nor ``1`` for
#: ``with_asbr``.
_PROBE = RunSpec("x", 1, 1, "x")
_FIELD_TYPES: Dict[str, type] = {
    f.name: type(getattr(_PROBE, f.name))
    for f in dataclasses.fields(RunSpec)
}


def spec_to_wire(spec: RunSpec) -> dict:
    """JSON-ready dict carrying every RunSpec field (incl. engine)."""
    return dataclasses.asdict(spec)


def spec_from_wire(obj) -> RunSpec:
    """Decode and validate one spec object from a request body."""
    if not isinstance(obj, dict):
        raise WireError("spec must be a JSON object, got %s"
                        % type(obj).__name__)
    unknown = sorted(set(obj) - set(_FIELD_TYPES))
    if unknown:
        raise WireError("unknown spec field(s): %s" % ", ".join(unknown))
    missing = [n for n in _REQUIRED if n not in obj]
    if missing:
        raise WireError("missing required spec field(s): %s"
                        % ", ".join(missing))
    kwargs = {}
    for name, value in obj.items():
        want = _FIELD_TYPES[name]
        if want is bool:
            if not isinstance(value, bool):
                raise WireError("field %r must be a boolean" % name)
        elif want is int:
            if isinstance(value, bool) or not isinstance(value, int):
                raise WireError("field %r must be an integer" % name)
        elif want is float:
            if isinstance(value, bool) or \
                    not isinstance(value, (int, float)):
                raise WireError("field %r must be a number" % name)
            value = float(value)
        elif want is str:
            if not isinstance(value, str):
                raise WireError("field %r must be a string" % name)
        kwargs[name] = value
    if kwargs["benchmark"] not in WORKLOAD_NAMES:
        raise WireError("unknown benchmark %r (one of: %s)"
                        % (kwargs["benchmark"],
                           ", ".join(sorted(WORKLOAD_NAMES))))
    if kwargs["n_samples"] <= 0:
        raise WireError("n_samples must be positive")
    if kwargs.get("engine", "interp") not in _ENGINES:
        raise WireError("engine must be one of: %s" % ", ".join(_ENGINES))
    if kwargs.get("bdt_update", "execute") not in _BDT_UPDATES:
        raise WireError("bdt_update must be one of: %s"
                        % ", ".join(_BDT_UPDATES))
    if kwargs.get("backend", "inorder") not in _BACKENDS:
        raise WireError("backend must be one of: %s"
                        % ", ".join(_BACKENDS))
    return RunSpec(**kwargs)


def specs_from_wire(objs) -> List[RunSpec]:
    """Decode a sweep's spec list (bounded sanity checks only)."""
    if not isinstance(objs, list) or not objs:
        raise WireError("specs must be a non-empty JSON array")
    out = []
    for i, obj in enumerate(objs):
        try:
            out.append(spec_from_wire(obj))
        except WireError as exc:
            raise WireError("specs[%d]: %s" % (i, exc))
    return out


def deadline_from_wire(obj: dict) -> float:
    """Decode a request body's optional ``deadline_ms`` into seconds.

    ``deadline_ms`` is *request-level*, not spec-level: it bounds how
    long the caller will wait, so it must never enter the spec — two
    tenants asking for the same point with different patience share
    one cache entry and one execution.  Returns 0.0 when absent.
    """
    value = obj.get("deadline_ms")
    if value is None:
        return 0.0
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value <= 0:
        raise WireError("deadline_ms must be a positive number of "
                        "milliseconds")
    return float(value) / 1000.0


def spec_key(spec: RunSpec) -> str:
    """The service's coalescing/cache key — the runner's, verbatim."""
    return key_for_spec(spec)


def shard_path(spec: RunSpec, shards: int) -> str:
    """``"<shard>/<key>.json"`` relative entry path under a cache root."""
    key = spec_key(spec)
    prefix = shard_of(key, shards)
    name = key + ".json"
    return prefix + "/" + name if prefix else name
