"""A small synchronous client for the serve daemon.

``http.client`` over one keep-alive connection: enough for the CLI,
the CI smoke driver and scripted tenants, with zero dependencies.  The
load suite uses raw asyncio sockets instead (it needs thousands of
concurrent requests); this client optimises for clarity.

PR 9 makes the client a well-behaved tenant of a daemon that sheds:

* **Retries** — connection errors and shed responses (429/503 bearing
  ``Retry-After``) are retried with capped exponential backoff plus
  full jitter, honouring the server's ``Retry-After`` as a floor.
  Retrying is safe because the service is idempotent under the
  cache/coalescing key: a resubmitted run lands on the same in-flight
  slot or cache entry, never a second simulation.
* **No busy-polling** — :meth:`wait_job` subscribes to the job's
  chunked event stream and returns when the terminal event arrives;
  polling survives only as the fallback when streaming is unavailable
  (old daemon, stream cut mid-drain).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Iterator, Optional, Tuple

#: statuses the daemon uses for load shedding; retryable only when the
#: response carries a ``Retry-After`` (a bare 503 — e.g. ``/readyz``
#: before recovery finishes — is a state report, not an invitation)
SHED_STATUSES = (429, 503)


class ServeError(RuntimeError):
    """A non-2xx response; carries the decoded error body."""

    def __init__(self, status: int, body) -> None:
        super().__init__("HTTP %d: %s" % (status, body))
        self.status = status
        self.body = body


class ServeClient:
    """Talk JSON to one daemon.  Usable as a context manager.

    ``retries`` bounds how many times a retryable failure (connection
    error / shed response) is retried per request; ``backoff`` and
    ``backoff_cap`` shape the capped exponential backoff between
    attempts.  ``retries=0`` restores fail-fast behaviour.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 60.0, retries: int = 4,
                 backoff: float = 0.1, backoff_cap: float = 2.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- retry plumbing -----------------------------------------------
    def _retry_sleep(self, attempt: int,
                     retry_after: Optional[float]) -> None:
        """Capped exponential backoff with full jitter; the server's
        ``Retry-After`` hint is a floor, never ignored downward."""
        wait = min(self.backoff_cap, self.backoff * (2 ** (attempt - 1)))
        wait *= random.random()       # full jitter: desynchronise tenants
        if retry_after:
            wait = max(wait, retry_after)
        if wait > 0:
            time.sleep(wait)

    def request(self, method: str, path: str,
                obj: Optional[dict] = None,
                retry: bool = True) -> Tuple[int, dict]:
        """One request/response cycle.

        With ``retry`` (default), connection errors and shed responses
        (429/503 carrying ``Retry-After``) are retried up to
        ``self.retries`` times with backoff; the final shed response is
        returned (not raised) so callers still see the real status.
        ``retry=False`` gives the raw single-attempt behaviour.
        """
        body = json.dumps(obj).encode("utf-8") if obj is not None \
            else None
        headers = {"Content-Type": "application/json"} if body else {}
        budget = self.retries if retry else 0
        attempt = 0
        while True:
            attempt += 1
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                payload = resp.read()
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError):
                self.close()
                if attempt > budget:
                    raise
                self._retry_sleep(attempt, None)
                continue
            try:
                decoded = json.loads(payload) if payload else {}
            except json.JSONDecodeError:
                decoded = {"raw": payload.decode("utf-8", "replace")}
            retry_after = resp.getheader("Retry-After")
            if resp.status in SHED_STATUSES and retry_after is not None \
                    and attempt <= budget:
                try:
                    floor = float(retry_after)
                except ValueError:
                    floor = None
                self._retry_sleep(attempt, floor)
                continue
            return resp.status, decoded

    def check(self, method: str, path: str,
              obj: Optional[dict] = None) -> dict:
        status, decoded = self.request(method, path, obj)
        if status >= 300:
            raise ServeError(status, decoded)
        return decoded

    # -- convenience verbs --------------------------------------------
    def healthz(self) -> dict:
        return self.check("GET", "/healthz")

    def readyz(self) -> Tuple[bool, dict]:
        """(ready, body) without raising — 503 is an answer here."""
        status, decoded = self.request("GET", "/readyz", retry=False)
        return status == 200, decoded

    def stats(self) -> dict:
        return self.check("GET", "/stats")

    def run(self, spec: dict, metrics: bool = False,
            deadline_ms: Optional[float] = None) -> dict:
        body = {"spec": spec, "metrics": metrics}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self.check("POST", "/run", body)

    def sweep(self, specs: list, metrics: bool = False,
              deadline_ms: Optional[float] = None) -> dict:
        body = {"specs": specs, "metrics": metrics}
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        return self.check("POST", "/sweep", body)["job"]

    def dse(self, **body) -> dict:
        return self.check("POST", "/dse", body)["job"]

    def job(self, job_id: str) -> dict:
        return self.check("GET", "/jobs/%s" % job_id)["job"]

    def wait_job(self, job_id: str, timeout: float = 120.0,
                 poll: float = 0.5) -> dict:
        """Block until the job is terminal, without busy-polling.

        Subscribes to the job's chunked event stream and returns once
        the ``end`` event arrives (one long-lived connection, zero
        request churn).  If the stream is unavailable or is cut before
        the terminal event (daemon draining, old server), degrades to
        polling ``GET /jobs/<id>`` at ``poll`` intervals.
        """
        deadline = time.monotonic() + timeout

        def remaining() -> float:
            left = deadline - time.monotonic()
            if left <= 0:
                raise TimeoutError("job %s not terminal after %.1fs"
                                   % (job_id, timeout))
            return left

        try:
            for event in self.stream_events(job_id):
                remaining()
                if event.get("kind") == "end":
                    return self.job(job_id)
        except (ServeError, OSError, http.client.HTTPException,
                json.JSONDecodeError):
            pass                      # stream unavailable: fall back
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            remaining()
            time.sleep(poll)

    def stream_events(self, job_id: str) -> Iterator[dict]:
        """Yield a job's progress events live (chunked JSONL).

        Runs on its own connection: the stream ends with the job, and
        the daemon closes streaming connections when it is done.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", "/jobs/%s/events" % job_id)
            resp = conn.getresponse()
            if resp.status != 200:
                raise ServeError(resp.status,
                                 resp.read().decode("utf-8", "replace"))
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def shutdown(self) -> dict:
        out = self.check("POST", "/shutdown")
        self.close()
        return out
