"""A small synchronous client for the serve daemon.

``http.client`` over one keep-alive connection: enough for the CLI,
the CI smoke driver and scripted tenants, with zero dependencies.  The
load suite uses raw asyncio sockets instead (it needs thousands of
concurrent requests); this client optimises for clarity.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Optional, Tuple


class ServeError(RuntimeError):
    """A non-2xx response; carries the decoded error body."""

    def __init__(self, status: int, body) -> None:
        super().__init__("HTTP %d: %s" % (status, body))
        self.status = status
        self.body = body


class ServeClient:
    """Talk JSON to one daemon.  Usable as a context manager."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, method: str, path: str,
                obj: Optional[dict] = None) -> Tuple[int, dict]:
        """One request/response cycle; reconnects once on a dropped
        keep-alive connection."""
        body = json.dumps(obj).encode("utf-8") if obj is not None \
            else None
        headers = {"Content-Type": "application/json"} if body else {}
        for attempt in (1, 2):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                payload = resp.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    BrokenPipeError, OSError):
                self.close()
                if attempt == 2:
                    raise
        try:
            decoded = json.loads(payload) if payload else {}
        except json.JSONDecodeError:
            decoded = {"raw": payload.decode("utf-8", "replace")}
        return resp.status, decoded

    def check(self, method: str, path: str,
              obj: Optional[dict] = None) -> dict:
        status, decoded = self.request(method, path, obj)
        if status >= 300:
            raise ServeError(status, decoded)
        return decoded

    # -- convenience verbs --------------------------------------------
    def healthz(self) -> dict:
        return self.check("GET", "/healthz")

    def stats(self) -> dict:
        return self.check("GET", "/stats")

    def run(self, spec: dict, metrics: bool = False) -> dict:
        return self.check("POST", "/run",
                          {"spec": spec, "metrics": metrics})

    def sweep(self, specs: list, metrics: bool = False) -> dict:
        return self.check("POST", "/sweep",
                          {"specs": specs, "metrics": metrics})["job"]

    def dse(self, **body) -> dict:
        return self.check("POST", "/dse", body)["job"]

    def job(self, job_id: str) -> dict:
        return self.check("GET", "/jobs/%s" % job_id)["job"]

    def wait_job(self, job_id: str, timeout: float = 120.0,
                 poll: float = 0.1) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() > deadline:
                raise TimeoutError("job %s still %s after %.1fs"
                                   % (job_id, job["state"], timeout))
            time.sleep(poll)

    def stream_events(self, job_id: str) -> Iterator[dict]:
        """Yield a job's progress events live (chunked JSONL).

        Runs on its own connection: the stream ends with the job, and
        the daemon closes streaming connections when it is done.
        """
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request("GET", "/jobs/%s/events" % job_id)
            resp = conn.getresponse()
            if resp.status != 200:
                raise ServeError(resp.status,
                                 resp.read().decode("utf-8", "replace"))
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def shutdown(self) -> dict:
        out = self.check("POST", "/shutdown")
        self.close()
        return out
