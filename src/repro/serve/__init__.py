"""Simulation-as-a-service: a long-lived asyncio batch daemon.

The paper's evaluation — and everything this repo has grown around it
(differential sweeps, DSE, fault campaigns) — is a large batch of
simulator runs over configs and workloads.  PRs 1–5 built the back
half of a service: a content-addressed checksummed result cache, a
crash-tolerant worker pool and mergeable telemetry.  This package is
the front half:

* :mod:`~repro.serve.protocol` — the JSON wire format; a request's
  identity is the runner's existing spec hash, with the execution
  engine excluded (bit-identical engines share one cache entry);
* :mod:`~repro.serve.jobs` — job records with streamable per-spec
  progress events and honest terminal states (``done``/``failed``);
* :mod:`~repro.serve.server` — the asyncio daemon: ``/run`` with
  in-flight coalescing over a hot in-memory LRU and the sharded disk
  cache, ``/sweep`` and ``/dse`` batch jobs over the hardened pool,
  chunked-JSONL event streams, graceful drain on shutdown;
* :mod:`~repro.serve.client` — a dependency-free synchronous client.

Entry points: ``repro serve`` (CLI), :func:`run_server` (embedding),
:class:`ServeClient` (scripting).  Load and failure behaviour are
locked by ``tests/test_serve_load.py`` and ``tests/test_serve_chaos.py``
plus the CI serve-smoke step.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobStore
from repro.serve.protocol import (
    WireError,
    shard_path,
    spec_from_wire,
    spec_key,
    spec_to_wire,
    specs_from_wire,
)
from repro.serve.server import ServeConfig, Server, run_server

__all__ = [
    "Job",
    "JobStore",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "Server",
    "WireError",
    "run_server",
    "shard_path",
    "spec_from_wire",
    "spec_key",
    "spec_to_wire",
    "specs_from_wire",
]
