"""Simulation-as-a-service: a long-lived asyncio batch daemon.

The paper's evaluation — and everything this repo has grown around it
(differential sweeps, DSE, fault campaigns) — is a large batch of
simulator runs over configs and workloads.  PRs 1–5 built the back
half of a service: a content-addressed checksummed result cache, a
crash-tolerant worker pool and mergeable telemetry.  This package is
the front half:

* :mod:`~repro.serve.protocol` — the JSON wire format; a request's
  identity is the runner's existing spec hash, with the execution
  engine excluded (bit-identical engines share one cache entry);
* :mod:`~repro.serve.jobs` — job records with streamable per-spec
  progress events and honest terminal states (``done``/``failed``);
* :mod:`~repro.serve.server` — the asyncio daemon: ``/run`` with
  in-flight coalescing over a hot in-memory LRU and the sharded disk
  cache, ``/sweep`` and ``/dse`` batch jobs over the hardened pool,
  chunked-JSONL event streams, graceful drain on shutdown;
* :mod:`~repro.serve.client` — a dependency-free synchronous client
  with capped-exponential-backoff retries (safe: the service is
  idempotent under the cache/coalescing key).

PR 9 makes the daemon itself expendable: with ``--state-dir`` every
job owns a fsync'd write-ahead log that a restart replays (settled
specs keep their outcome, pending specs re-enter the pool and resolve
from the result cache), admission control sheds with 429/503 +
``Retry-After`` instead of queueing unboundedly, and a request's
``deadline_ms`` flows end to end into journaled ``fail_kind=
"deadline"`` records.

Entry points: ``repro serve`` (CLI), :func:`run_server` (embedding),
:class:`ServeClient` (scripting).  Load and failure behaviour are
locked by ``tests/test_serve_load.py`` and ``tests/test_serve_chaos.py``
plus the CI serve-smoke steps; durability and admission by
``tests/test_serve_durability.py`` and ``tests/test_serve_admission.py``.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.jobs import Job, JobStore
from repro.serve.protocol import (
    WireError,
    deadline_from_wire,
    shard_path,
    spec_from_wire,
    spec_key,
    spec_to_wire,
    specs_from_wire,
)
from repro.serve.server import ServeConfig, Server, Shed, run_server

__all__ = [
    "Job",
    "JobStore",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "Server",
    "Shed",
    "WireError",
    "deadline_from_wire",
    "run_server",
    "shard_path",
    "spec_from_wire",
    "spec_key",
    "spec_to_wire",
    "specs_from_wire",
]
