"""The assembled program image."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.isa.encoding import decode, encode
from repro.isa.instruction import Instruction

TEXT_BASE = 0x00400000
DATA_BASE = 0x10000000
STACK_TOP = 0x7FFFF000


@dataclass
class SourceLoc:
    """Where an instruction came from in the assembly source."""

    line_no: int
    text: str


@dataclass
class Program:
    """An executable image: text, data, symbols and debug info.

    ``instrs`` holds the decoded instructions (the simulators' working
    form); ``words`` is the equivalent binary encoding.  The two are kept
    in sync by construction.
    """

    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    instrs: List[Instruction] = field(default_factory=list)
    words: List[int] = field(default_factory=list)
    data: Dict[int, int] = field(default_factory=dict)  # word addr -> word
    labels: Dict[str, int] = field(default_factory=dict)
    source_map: Dict[int, SourceLoc] = field(default_factory=dict)
    entry: Optional[int] = None
    #: labels whose address escapes into data (via la/%hi/%lo or .word);
    #: these are potential indirect-jump targets, so the instruction
    #: scheduler must not move the instruction they name
    address_taken: Set[str] = field(default_factory=set)
    #: mutation counter, bumped by :meth:`replace_instr` — identity-
    #: keyed caches (interned decode tables, compiled block artifacts)
    #: include it in their keys so in-place edits invalidate them
    version: int = field(default=0, compare=False, repr=False)

    @property
    def text_end(self) -> int:
        """First byte address past the text segment."""
        return self.text_base + 4 * len(self.instrs)

    def pc_of(self, index: int) -> int:
        """Byte address of the instruction at text index ``index``."""
        return self.text_base + 4 * index

    def index_of(self, pc: int) -> int:
        """Text index of the instruction at byte address ``pc``."""
        off = pc - self.text_base
        if off % 4 or not 0 <= off < 4 * len(self.instrs):
            raise ValueError("pc 0x%x is not in the text segment" % pc)
        return off // 4

    def instr_at(self, pc: int) -> Instruction:
        """Instruction at byte address ``pc``."""
        return self.instrs[self.index_of(pc)]

    def label_at(self, pc: int) -> Optional[str]:
        """A label naming address ``pc``, if any."""
        for name, addr in self.labels.items():
            if addr == pc:
                return name
        return None

    def address_of(self, label: str) -> int:
        """Address of a label; raises KeyError when undefined."""
        return self.labels[label]

    def replace_instr(self, index: int, instr: Instruction) -> None:
        """Replace one instruction, keeping words/instrs consistent.

        Used by the instruction scheduler when reordering code.
        """
        self.instrs[index] = instr
        self.words[index] = encode(instr)
        self.version += 1

    def disassemble(self) -> str:
        """Full text-segment disassembly with addresses and labels."""
        lines = []
        addr_labels: Dict[int, List[str]] = {}
        for name, addr in self.labels.items():
            addr_labels.setdefault(addr, []).append(name)
        for i, instr in enumerate(self.instrs):
            pc = self.pc_of(i)
            for name in sorted(addr_labels.get(pc, [])):
                lines.append("%s:" % name)
            lines.append("  0x%08x:  %08x  %s"
                         % (pc, self.words[i], instr.render(pc)))
        return "\n".join(lines)

    @classmethod
    def from_words(cls, words, text_base: int = TEXT_BASE) -> "Program":
        """Build a program straight from encoded words (for tests)."""
        prog = cls(text_base=text_base)
        prog.words = list(words)
        prog.instrs = [decode(w) for w in prog.words]
        prog.entry = text_base
        return prog

    @classmethod
    def from_instrs(cls, instrs, text_base: int = TEXT_BASE) -> "Program":
        """Build a program from decoded instructions (for tests)."""
        prog = cls(text_base=text_base)
        prog.instrs = list(instrs)
        prog.words = [encode(i) for i in prog.instrs]
        prog.entry = text_base
        return prog
