"""Two-pass assembler and program image.

The assembler turns assembly text into a :class:`~repro.asm.program.Program`:
a binary text segment (encoded 32-bit words), an initialised data segment,
a symbol table, and a source map.  Programs are what both simulators
execute and what the profiler and scheduler analyse.
"""

from repro.asm.program import Program, SourceLoc
from repro.asm.assembler import Assembler, AssemblerError, assemble

__all__ = ["Program", "SourceLoc", "Assembler", "AssemblerError", "assemble"]
