"""Two-pass assembler for the repro ISA.

Supported syntax (a practical subset of classic MIPS assembler syntax):

* Comments: ``#`` or ``;`` to end of line.
* Labels: ``name:`` (may share a line with an instruction or directive).
* Sections: ``.text`` and ``.data`` (``.text`` is the default).
* Data directives: ``.word``, ``.half``, ``.byte``, ``.space N``,
  ``.align N``, ``.asciiz "str"``.  ``.word`` accepts label references.
* Pseudo-instructions: ``nop``, ``move``, ``li``, ``la``, ``b``, ``not``,
  ``neg``, ``subi``, ``blt``, ``bgt``, ``ble``, ``bge``.

Pass 1 parses, expands pseudo-instructions (with deterministic sizes so
label addresses are known), and assigns addresses.  Pass 2 resolves label
operands and encodes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.asm.program import DATA_BASE, Program, SourceLoc, TEXT_BASE
from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Kind, SPECS
from repro.isa.registers import reg_num


class AssemblerError(ValueError):
    """A syntax or semantic error in assembly source."""

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        if line_no is not None:
            message = "line %d: %s" % (line_no, message)
        super().__init__(message)
        self.line_no = line_no


_INT_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|0b[01]+|\d+)$")
_LABEL_RE = re.compile(r"^[A-Za-z_.$][A-Za-z0-9_.$]*$")
_MEM_RE = re.compile(r"^(.*)\((.+)\)$")


def _parse_int(tok: str, line_no: int) -> int:
    tok = tok.strip()
    if not _INT_RE.match(tok):
        raise AssemblerError("expected integer, got %r" % tok, line_no)
    return int(tok, 0)


@dataclass
class _PendingInstr:
    """An instruction awaiting label resolution in pass 2."""

    mnemonic: str
    operands: List[str]
    line_no: int
    text: str
    index: int  # text-segment instruction index


class Assembler:
    """Assembles one source text into a :class:`Program`."""

    def __init__(self, text_base: int = TEXT_BASE,
                 data_base: int = DATA_BASE) -> None:
        self.text_base = text_base
        self.data_base = data_base

    # ------------------------------------------------------------------
    def assemble(self, source: str) -> Program:
        self._fixups: List[Tuple[int, str, int]] = []
        prog = Program(text_base=self.text_base, data_base=self.data_base)
        pending: List[_PendingInstr] = []
        data_bytes = bytearray()
        section = "text"

        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#", 1)[0].split(";", 1)[0].strip()
            if not line:
                continue
            # peel off leading labels
            while True:
                m = re.match(r"^([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:\s*(.*)$", line)
                if not m:
                    break
                name = m.group(1)
                if name in prog.labels:
                    raise AssemblerError("duplicate label %r" % name, line_no)
                if section == "text":
                    prog.labels[name] = self.text_base + 4 * len(pending)
                else:
                    prog.labels[name] = self.data_base + len(data_bytes)
                line = m.group(2).strip()
            if not line:
                continue

            if line.startswith("."):
                section = self._directive(line, line_no, section,
                                          data_bytes, prog, pending)
                continue

            if section != "text":
                raise AssemblerError(
                    "instruction outside .text: %r" % line, line_no)
            self._instruction(line, line_no, pending)

        # pass 2: resolve operands and encode
        for p in pending:
            instr = self._resolve(p, prog)
            prog.instrs.append(instr)
        prog.words = [encode(i) for i in prog.instrs]
        for p in pending:
            prog.source_map[prog.pc_of(p.index)] = SourceLoc(p.line_no, p.text)

        self._pack_data(data_bytes, prog)
        prog.entry = prog.labels.get("main", prog.text_base)
        return prog

    # ------------------------------------------------------------------
    # pass 1 helpers
    # ------------------------------------------------------------------
    def _directive(self, line: str, line_no: int, section: str,
                   data_bytes: bytearray, prog: Program,
                   pending: List[_PendingInstr]) -> str:
        parts = line.split(None, 1)
        name = parts[0]
        arg = parts[1].strip() if len(parts) > 1 else ""
        if name == ".text":
            return "text"
        if name == ".data":
            return "data"
        if name == ".globl":
            return section  # accepted and ignored
        if section != "data":
            raise AssemblerError("%s only allowed in .data" % name, line_no)
        if name == ".word":
            for tok in self._split_operands(arg):
                # label refs resolved in a mini pass-2 via placeholder
                if _INT_RE.match(tok):
                    val = _parse_int(tok, line_no)
                else:
                    # record a fixup: store token, patch in _pack_data
                    self._word_fixups.append(
                        (len(data_bytes), tok, line_no))
                    val = 0
                data_bytes += (val & 0xFFFFFFFF).to_bytes(4, "little")
        elif name == ".half":
            for tok in self._split_operands(arg):
                val = _parse_int(tok, line_no)
                data_bytes += (val & 0xFFFF).to_bytes(2, "little")
        elif name == ".byte":
            for tok in self._split_operands(arg):
                val = _parse_int(tok, line_no)
                data_bytes += bytes([val & 0xFF])
        elif name == ".space":
            data_bytes += bytes(_parse_int(arg, line_no))
        elif name == ".align":
            n = 1 << _parse_int(arg, line_no)
            while len(data_bytes) % n:
                data_bytes += b"\x00"
        elif name == ".asciiz":
            m = re.match(r'^"(.*)"$', arg)
            if not m:
                raise AssemblerError(".asciiz needs a quoted string", line_no)
            data_bytes += m.group(1).encode("utf-8").decode(
                "unicode_escape").encode("latin-1") + b"\x00"
        else:
            raise AssemblerError("unknown directive %r" % name, line_no)
        return section

    @staticmethod
    def _split_operands(arg: str) -> List[str]:
        return [t.strip() for t in arg.split(",")] if arg else []

    def _instruction(self, line: str, line_no: int,
                     pending: List[_PendingInstr]) -> None:
        parts = line.split(None, 1)
        mnem = parts[0].lower()
        ops = self._split_operands(parts[1]) if len(parts) > 1 else []
        for expanded_mnem, expanded_ops in self._expand(mnem, ops, line_no):
            pending.append(_PendingInstr(expanded_mnem, expanded_ops,
                                         line_no, line, len(pending)))

    # pseudo-instruction expansion; sizes must not depend on label values
    def _expand(self, mnem: str, ops: List[str],
                line_no: int) -> List[Tuple[str, List[str]]]:
        if mnem in SPECS:
            return [(mnem, ops)]
        if mnem == "nop":
            return [("sll", ["r0", "r0", "0"])]
        if mnem == "move":
            self._arity(mnem, ops, 2, line_no)
            return [("addu", [ops[0], ops[1], "r0"])]
        if mnem == "not":
            self._arity(mnem, ops, 2, line_no)
            return [("nor", [ops[0], ops[1], "r0"])]
        if mnem == "neg":
            self._arity(mnem, ops, 2, line_no)
            return [("subu", [ops[0], "r0", ops[1]])]
        if mnem == "subi":
            self._arity(mnem, ops, 3, line_no)
            return [("addi", [ops[0], ops[1],
                              str(-_parse_int(ops[2], line_no))])]
        if mnem == "b":
            self._arity(mnem, ops, 1, line_no)
            return [("beq", ["r0", "r0", ops[0]])]
        if mnem == "li":
            self._arity(mnem, ops, 2, line_no)
            val = _parse_int(ops[1], line_no) & 0xFFFFFFFF
            sval = val - 0x100000000 if val & 0x80000000 else val
            if -32768 <= sval <= 32767:
                return [("addiu", [ops[0], "r0", str(sval)])]
            if 0 <= val <= 0xFFFF:
                return [("ori", [ops[0], "r0", str(val)])]
            hi, lo = val >> 16, val & 0xFFFF
            out = [("lui", [ops[0], str(hi)])]
            if lo:
                out.append(("ori", [ops[0], ops[0], str(lo)]))
            else:
                out.append(("sll", [ops[0], ops[0], "0"]))  # keep size fixed
            return out
        if mnem == "la":
            self._arity(mnem, ops, 2, line_no)
            # always two instructions so label addresses stay fixed
            return [("lui", [ops[0], "%%hi(%s)" % ops[1]]),
                    ("ori", [ops[0], ops[0], "%%lo(%s)" % ops[1]])]
        if mnem in ("blt", "bgt", "ble", "bge"):
            self._arity(mnem, ops, 3, line_no)
            rs, rt, label = ops
            if mnem == "blt":   # rs < rt
                return [("slt", ["at", rs, rt]), ("bnez", ["at", label])]
            if mnem == "bgt":   # rs > rt  <=>  rt < rs
                return [("slt", ["at", rt, rs]), ("bnez", ["at", label])]
            if mnem == "ble":   # rs <= rt <=> !(rt < rs)
                return [("slt", ["at", rt, rs]), ("beqz", ["at", label])]
            return [("slt", ["at", rs, rt]), ("beqz", ["at", label])]
        raise AssemblerError("unknown mnemonic %r" % mnem, line_no)

    @staticmethod
    def _arity(mnem: str, ops: List[str], n: int, line_no: int) -> None:
        if len(ops) != n:
            raise AssemblerError("%s expects %d operands, got %d"
                                 % (mnem, n, len(ops)), line_no)

    # ------------------------------------------------------------------
    # pass 2: operand resolution
    # ------------------------------------------------------------------
    def _resolve(self, p: _PendingInstr, prog: Program) -> Instruction:
        spec = SPECS[p.mnemonic]
        syntax = [t.strip() for t in spec.syntax.split(",")] if spec.syntax \
            else []
        if len(p.operands) != len(syntax):
            raise AssemblerError(
                "%s expects %d operands (%s), got %d"
                % (p.mnemonic, len(syntax), spec.syntax, len(p.operands)),
                p.line_no)
        fields = {"op": p.mnemonic}
        pc = prog.pc_of(p.index)
        for pattern, tok in zip(syntax, p.operands):
            if pattern in ("rd", "rs", "rt"):
                fields[pattern] = self._reg(tok, p.line_no)
            elif pattern == "shamt":
                fields["shamt"] = _parse_int(tok, p.line_no)
            elif pattern == "imm":
                fields["imm"] = self._imm(tok, prog, p.line_no)
            elif pattern == "imm(rs)":
                m = _MEM_RE.match(tok)
                if not m:
                    raise AssemblerError(
                        "expected imm(reg), got %r" % tok, p.line_no)
                off = m.group(1).strip()
                fields["imm"] = self._imm(off, prog, p.line_no) if off else 0
                fields["rs"] = self._reg(m.group(2), p.line_no)
            elif pattern == "label":
                addr = self._label_addr(tok, prog, p.line_no)
                if spec.kind in (Kind.JUMP, Kind.JAL):
                    fields["target"] = (addr >> 2) & 0x03FFFFFF
                else:
                    off = (addr - (pc + 4)) >> 2
                    if not -32768 <= off <= 32767:
                        raise AssemblerError(
                            "branch to %r out of range" % tok, p.line_no)
                    fields["imm"] = off
            else:  # pragma: no cover
                raise AssertionError(pattern)
        return Instruction(**fields)

    def _reg(self, tok: str, line_no: int) -> int:
        try:
            return reg_num(tok)
        except KeyError as exc:
            raise AssemblerError(str(exc), line_no) from None

    def _imm(self, tok: str, prog: Program, line_no: int) -> int:
        m = re.match(r"^%(hi|lo)\((.+)\)$", tok)
        if m:
            name = m.group(2).strip()
            addr = self._label_addr(name, prog, line_no)
            if name in prog.labels:
                prog.address_taken.add(name)
            return (addr >> 16) & 0xFFFF if m.group(1) == "hi" \
                else addr & 0xFFFF
        return _parse_int(tok, line_no)

    def _label_addr(self, tok: str, prog: Program, line_no: int) -> int:
        m = re.match(r"^(.+?)\s*([+-])\s*(\d+|0x[0-9a-fA-F]+)$", tok)
        offset = 0
        name = tok
        if m and not _INT_RE.match(tok):
            name = m.group(1).strip()
            offset = int(m.group(3), 0)
            if m.group(2) == "-":
                offset = -offset
        if _INT_RE.match(name):
            return int(name, 0) + offset
        if not _LABEL_RE.match(name):
            raise AssemblerError("bad label %r" % tok, line_no)
        if name not in prog.labels:
            raise AssemblerError("undefined label %r" % name, line_no)
        return prog.labels[name] + offset

    # ------------------------------------------------------------------
    def _pack_data(self, data_bytes: bytearray, prog: Program) -> None:
        for off, tok, line_no in self._word_fixups:
            addr = self._label_addr(tok, prog, line_no)
            base = tok.split("+")[0].split("-")[0].strip()
            if base in prog.labels:
                prog.address_taken.add(base)
            data_bytes[off:off + 4] = (addr & 0xFFFFFFFF).to_bytes(4, "little")
        while len(data_bytes) % 4:
            data_bytes += b"\x00"
        for i in range(0, len(data_bytes), 4):
            word = int.from_bytes(data_bytes[i:i + 4], "little")
            prog.data[self.data_base + i] = word

    # fixups are reset at the top of each assemble() call
    @property
    def _word_fixups(self) -> List[Tuple[int, str, int]]:
        return self._fixups


def assemble(source: str, text_base: int = TEXT_BASE,
             data_base: int = DATA_BASE) -> Program:
    """Assemble ``source`` into a :class:`Program` (convenience wrapper)."""
    return Assembler(text_base=text_base, data_base=data_base) \
        .assemble(source)
