#!/usr/bin/env python
"""Case study: the complete ASBR flow on the ADPCM encoder.

Reproduces the paper's methodology end to end on a real workload:

1. profile the application (branch counts, taken rates, fold distances),
2. replay the baseline predictor over the branch trace for per-branch
   accuracy,
3. select the frequently-executed, hard-to-predict, foldable branches
   (paper Section 6),
4. extract their static BranchInfo records and load the BIT,
5. compare the customized core (ASBR + quarter-size bimodal) against
   the general-purpose baseline (2048-entry bimodal).

Run:  python examples/adpcm_case_study.py [n_samples]
"""

import sys

from repro.asbr import ASBRUnit
from repro.predictors import evaluate_on_trace, make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sim.functional import collect_branch_trace
from repro.workloads import get_workload, speech_like


def main(n_samples=1500):
    workload = get_workload("adpcm_enc")
    pcm = speech_like(n_samples)
    stream = workload.input_stream(pcm)
    program = workload.program

    print("=== 1. profiling (%d samples) ===" % n_samples)
    profile = BranchProfiler().profile(program,
                                       workload.build_memory(stream))
    print("%d dynamic instructions, %d static branches, %d executions"
          % (profile.total_instructions, len(profile.branches),
             profile.total_branch_executions))

    print("\n=== 2. baseline predictor accuracy per branch ===")
    trace = collect_branch_trace(program, workload.build_memory(stream))
    accuracy = evaluate_on_trace(make_predictor("bimodal-2048"), trace)
    print("overall bimodal-2048 accuracy: %.1f%%"
          % (100 * accuracy.accuracy))

    print("\n=== 3. branch selection ===")
    selection = select_branches(profile, accuracy, bit_capacity=16,
                                bdt_update="execute")
    print(selection.describe())
    for pc, reason in sorted(selection.rejected.items()):
        count = profile.branches[pc].count if pc in profile.branches else 0
        if count > n_samples // 4:        # only show significant ones
            print("  rejected 0x%x (exec %d): %s" % (pc, count, reason))

    print("\n=== 4. BIT contents ===")
    unit = ASBRUnit.from_branch_infos(selection.infos,
                                      bdt_update="execute")
    for info in selection.infos:
        print("  " + info.describe(program))
    print("ASBR hardware state: %d bits (BIT %d + BDT %d)"
          % (unit.state_bits, unit.bit.state_bits, unit.bdt.state_bits))

    print("\n=== 5. the paper's comparison ===")
    baseline = workload.run_pipeline(
        pcm, predictor=make_predictor("bimodal-2048"))
    customized = workload.run_pipeline(
        pcm, predictor=make_predictor("bimodal-512-512"), asbr=unit)
    assert customized.outputs == workload.golden_output(pcm)

    b, c = baseline.stats, customized.stats
    improvement = 100.0 * (b.cycles - c.cycles) / b.cycles
    big = make_predictor("bimodal-2048").state_bits
    small = make_predictor("bimodal-512-512").state_bits + unit.state_bits
    print("baseline   (bimodal-2048): %9d cycles  CPI %.2f  acc %.1f%%"
          % (b.cycles, b.cpi, 100 * b.branch_accuracy))
    print("ASBR + bi-512           : %9d cycles  CPI %.2f  acc %.1f%%"
          % (c.cycles, c.cpi, 100 * c.branch_accuracy))
    print("folded out %d branch executions (%.1f%% of all instructions)"
          % (c.folds_committed, 100.0 * c.folds_committed / b.committed))
    print("cycle improvement: %.1f%%   (paper reports 22%% on MediaBench)"
          % improvement)
    print("predictor+ASBR state: %d bits vs %d bits baseline (%.1fx less)"
          % (small, big, big / small))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1500)
