#!/usr/bin/env python
"""The full toolchain: C-like source -> assembly -> schedule -> ASBR.

The paper's flow starts from C compiled by gcc plus manual scheduling;
this example starts from minic, our small C subset compiler, and runs
the automated version of the same path:

1. compile a control-heavy saturating filter kernel,
2. list-schedule the compiled code (paper Section 5.1) — the
   ASBR-aware codegen keeps branch predicates out of the accumulator
   register so the scheduler can hoist them,
3. profile, select and fold with ASBR,
4. measure against the unfolded baseline.

Run:  python examples/minic_toolchain.py
"""

from repro.asbr import ASBRUnit
from repro.minic import compile_source, compile_to_program
from repro.predictors import make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sched import schedule_program, static_fold_distances
from repro.sim import FunctionalSimulator, PipelineSimulator

SOURCE = """
int input[32] = {120, -340, 88, 524, -77, 501, -3, 499,
                 -640, 12, 430, -55, 203, -870, 64, 7,
                 -402, 310, -28, 760, -91, 145, -506, 37,
                 830, -218, 460, -70, 150, -930, 21, 604};
int clamps = 0;
int sum = 0;

int main() {
    int prev = 0;
    int nclamp = 0;
    int total = 0;
    for (int i = 0; i < 32; i = i + 1) {
        int delta = input[i] - prev;
        int toohigh = delta > 500;     // predicate computed early,
        int toolow = delta < -500;     // independent work follows
        total = total + delta;
        if (toohigh) { delta = 500; nclamp = nclamp + 1; }
        if (toolow) { delta = -500; nclamp = nclamp + 1; }
        prev = prev + delta;
    }
    clamps = nclamp;
    sum = total;
    return nclamp;
}
"""


def main():
    print("=== 1. compile ===")
    asm_text = compile_source(SOURCE)
    print("minic -> %d lines of assembly" % asm_text.count("\n"))
    program = compile_to_program(SOURCE)
    golden = FunctionalSimulator(program)
    retired = golden.run()
    print("functional run: %d instructions, main() returned %d clamps"
          % (retired, golden.regs[2]))

    print("\n=== 2. schedule for folding (Section 5.1) ===")
    scheduled = schedule_program(program)
    before = static_fold_distances(program)
    after = static_fold_distances(scheduled)
    for pc in sorted(before):
        if before[pc] is not None and after.get(pc) is not None \
                and after[pc] > before[pc]:
            print("  widened 0x%x: distance %d -> %d"
                  % (pc, before[pc], after[pc]))
    check = FunctionalSimulator(scheduled)
    check.run()
    assert check.regs.snapshot() == golden.regs.snapshot()

    print("\n=== 3. profile + select ===")
    profile = BranchProfiler().profile(scheduled)
    selection = select_branches(profile, bit_capacity=16,
                                bdt_update="execute", min_count=8)
    print(selection.describe())

    print("\n=== 4. measure ===")
    base = PipelineSimulator(scheduled,
                             predictor=make_predictor("bimodal-512-512"))
    base_stats = base.run()
    unit = ASBRUnit.from_branch_infos(selection.infos,
                                      bdt_update="execute")
    cust = PipelineSimulator(scheduled,
                             predictor=make_predictor("bimodal-512-512"),
                             asbr=unit)
    cust_stats = cust.run()
    assert cust.regs.snapshot() == golden.regs.snapshot()

    saved = base_stats.cycles - cust_stats.cycles
    print("baseline : %6d cycles (CPI %.2f)"
          % (base_stats.cycles, base_stats.cpi))
    print("with ASBR: %6d cycles (CPI %.2f), %d folds"
          % (cust_stats.cycles, cust_stats.cpi,
             cust_stats.folds_committed))
    print("saved %d cycles (%.1f%%) on compiled code, zero manual work"
          % (saved, 100.0 * saved / base_stats.cycles))
    print("\n(The second clamp branch sits in its own basic block right "
          "after the first;\nonly global code motion — the paper's "
          "manual scheduling — could widen it.\nThe hand-written "
          "workloads in repro.workloads show that upper bound.)")


if __name__ == "__main__":
    main()
