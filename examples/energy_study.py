#!/usr/bin/env python
"""Quantifying the paper's power claims with the activity-based model.

The paper argues ASBR saves power twice over: folded branches (and the
wrong-path work they would have caused) never pass through the
pipeline, and the displaced predictor tables are far smaller.  This
example runs one benchmark under a range of front-end configurations
and prints the energy breakdown for each.

Run:  python examples/energy_study.py [benchmark] [n_samples]
"""

import sys

from repro.asbr import ASBRUnit
from repro.power import estimate_energy
from repro.predictors import make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sim.pipeline import PipelineSimulator
from repro.workloads import get_workload, speech_like


def simulate(workload, pcm, predictor_spec, with_asbr):
    stream = workload.input_stream(pcm)
    count = workload.count_fn(pcm)
    asbr = None
    if with_asbr:
        profile = BranchProfiler().profile(
            workload.program, workload.build_memory(stream, count))
        selection = select_branches(profile, bit_capacity=16,
                                    bdt_update="execute")
        asbr = ASBRUnit.from_branch_infos(selection.infos,
                                          bdt_update="execute")
    sim = PipelineSimulator(workload.program,
                            workload.build_memory(stream, count),
                            predictor=make_predictor(predictor_spec),
                            asbr=asbr)
    sim.run()
    n = count if count is not None else len(stream)
    assert workload.read_output(sim.memory, n) == \
        workload.golden_output(pcm)
    return sim


def main(benchmark="adpcm_enc", n_samples=1200):
    workload = get_workload(benchmark)
    pcm = speech_like(n_samples)

    configs = [
        ("not-taken (no predictor)", "not-taken", False),
        ("bimodal-2048 (baseline)", "bimodal-2048", False),
        ("gshare-2048", "gshare-2048-11-2048", False),
        ("ASBR + bimodal-512", "bimodal-512-512", True),
    ]
    reports = []
    for title, spec, asbr_on in configs:
        sim = simulate(workload, pcm, spec, asbr_on)
        report = estimate_energy(sim)
        reports.append((title, sim.stats, report))
        print(report.render("--- %s ---" % title))
        print("    cycles=%d  fetched=%d  squashed=%d"
              % (sim.stats.cycles, sim.stats.fetched, sim.stats.squashed))
        print()

    base = next(r for t, _s, r in reports if "baseline" in t)
    print("=== energy relative to the bimodal-2048 baseline ===")
    for title, _stats, report in reports:
        print("  %-26s %6.1f%%"
              % (title, 100.0 * report.total / base.total))
    print("\nThe customized core wins on both fronts the paper names: "
          "less pipeline\nactivity (fewer instructions fetched) and "
          "less table energy (small aux\npredictor + tiny BIT/BDT "
          "instead of a 2048-entry PHT+BTB).")


if __name__ == "__main__":
    bench = sys.argv[1] if len(sys.argv) > 1 else "adpcm_enc"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 1200
    main(bench, n)
