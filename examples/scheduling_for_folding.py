#!/usr/bin/env python
"""Compiler support for ASBR: instruction scheduling (paper Section 5.1).

Naively-compiled code computes branch predicates immediately before the
branch, so nothing is ever fold-distance-eligible.  The list scheduler
in repro.sched hoists each predicate's backward slice as early as its
dependences allow, recovering the distance automatically.

This example shows the transformation on the unscheduled ADPCM encoder:
static distances before/after, then the actual fold counts and cycles
from the pipeline, with the hand-scheduled production encoder as the
upper reference (the paper's "manual scheduling").

Run:  python examples/scheduling_for_folding.py
"""

from repro.asbr import ASBRUnit
from repro.predictors import make_predictor
from repro.profiling import BranchProfiler, select_branches
from repro.sched import schedule_program, static_fold_distances
from repro.workloads import get_workload, speech_like


def measure(workload, pcm):
    """Profile, select, and run one program variant with ASBR."""
    stream = workload.input_stream(pcm)
    profile = BranchProfiler().profile(workload.program,
                                       workload.build_memory(stream))
    selection = select_branches(profile, bit_capacity=16,
                                bdt_update="execute")
    unit = ASBRUnit.from_branch_infos(selection.infos,
                                      bdt_update="execute")
    result = workload.run_pipeline(
        pcm, predictor=make_predictor("bimodal-512-512"), asbr=unit)
    assert result.outputs == workload.golden_output(pcm)
    return result.stats, len(selection.selected)


def show_distances(title, program):
    distances = static_fold_distances(program)
    foldable = sum(1 for d in distances.values()
                   if d is not None and d >= 3)
    print("%-22s %2d zero-comparison branches, %2d locally foldable "
          "(distance >= 3)" % (title, len(distances), foldable))
    return distances


def main():
    pcm = speech_like(1000)
    naive = get_workload("adpcm_enc_unsched")
    hand = get_workload("adpcm_enc")

    print("=== static fold distances ===")
    before = show_distances("naive:", naive.program)
    scheduled_prog = schedule_program(naive.program)
    after = show_distances("list-scheduled:", scheduled_prog)
    show_distances("hand-scheduled:", hand.program)

    improved = [pc for pc in before
                if before[pc] is not None and after.get(pc) is not None
                and after[pc] > before[pc]]
    print("\nbranches whose distance the scheduler improved:")
    for pc in improved:
        print("  0x%x: %d -> %d   (%s)"
              % (pc, before[pc], after[pc],
                 naive.program.instr_at(pc).render(pc)))

    print("\n=== pipeline results (ASBR + bi-512) ===")
    scheduled = naive.with_program(scheduled_prog)
    for title, wl in (("naive", naive), ("list-scheduled", scheduled),
                      ("hand-scheduled", hand)):
        stats, selected = measure(wl, pcm)
        print("%-16s cycles=%-8d folds=%-6d BIT branches=%d"
              % (title, stats.cycles, stats.folds_committed, selected))

    print("\nThe local scheduler recovers the branches whose basic "
          "block has schedulable\nwork; the hand-scheduled variant "
          "additionally moves work across block\nboundaries (what the "
          "paper did manually, and what software pipelining\n"
          "generalises — Figure 5).")


if __name__ == "__main__":
    main()
