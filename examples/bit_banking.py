#!/usr/bin/env python
"""Multi-loop applications: BIT bank switching (paper Section 7).

"An effective way to virtually increase the size of BIT is to add
additional copies of BITs and switch between them during the loop
transitions ... by writing a special value to a control register just
before entering the loop."

This example builds a two-phase program — an ADPCM-style magnitude loop
followed by a table-search loop — whose fold candidates do not fit one
tiny BIT together.  Each loop gets its own bank, selected by a committed
``ctlw`` write at the loop boundary.

Run:  python examples/bit_banking.py
"""

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asbr.bit import BankedBIT
from repro.asm import assemble
from repro.predictors import NotTakenPredictor
from repro.sim import FunctionalSimulator, PipelineSimulator

SOURCE = """
.data
signal: .word 9, -4, 12, -31, 7, -2, 25, -18, 3, -1
        .word 14, -9, 2, -27, 11, -6, 19, -13, 8, -5
thresholds: .word 4, 8, 16, 32, 64, 9999
.text
main:
    ctlw 0                 # activate bank 0 for phase 1
    la   r4, signal
    li   r5, 20
    li   r6, 0             # sum |x|
phase1:
    lw   r2, 0(r4)
    addi r4, r4, 4
    addi r5, r5, -1
    sll  r0, r0, 0
p1_br:
    bltz r2, negate        # fold candidate, bank 0
    addu r6, r6, r2
    b    p1_next
negate:
    subu r6, r6, r2
p1_next:
    bnez r5, phase1

    ctlw 1                 # activate bank 1 for phase 2
    la   r4, signal
    li   r5, 20
    li   r7, 0             # histogram bucket accumulator
phase2:
    lw   r2, 0(r4)
    addi r4, r4, 4
    la   r8, thresholds
    li   r9, 0
search:
    lw   r10, 0(r8)
    addi r8, r8, 4
    subu r11, r2, r10      # predicate: x - threshold
    addi r9, r9, 1
    sll  r0, r0, 0
p2_br:
    bltz r11, found        # fold candidate, bank 1
    addu r9, r9, r0
    b    search
found:
    addu r7, r7, r9
    addi r5, r5, -1
    bnez r5, phase2
    halt
"""


def main():
    program = assemble(SOURCE)
    golden = FunctionalSimulator(program)
    golden.run()
    print("golden results: sum|x| = %d, bucket sum = %d"
          % (golden.regs[6], golden.regs[7]))

    # one fold candidate per phase; a 1-entry BIT cannot hold both
    bank0 = [extract_branch_info(program, program.labels["p1_br"])]
    bank1 = [extract_branch_info(program, program.labels["p2_br"])]
    banked = BankedBIT(num_banks=2, capacity=1)
    banked.load_bank(0, bank0)
    banked.load_bank(1, bank1)
    unit = ASBRUnit(banked, bdt_update="execute")

    sim = PipelineSimulator(program, predictor=NotTakenPredictor(),
                            asbr=unit)
    stats = sim.run()
    assert sim.regs.snapshot() == golden.regs.snapshot()

    base = PipelineSimulator(program, predictor=NotTakenPredictor()).run()
    print("bank switches        : %d" % unit.bit.switches)
    print("folds (taken/not)    : %d / %d"
          % (unit.stats.folded_taken, unit.stats.folded_not_taken))
    print("cycles without ASBR  : %d" % base.cycles)
    print("cycles with 2x1 BIT  : %d  (%.1f%% better)"
          % (stats.cycles,
             100.0 * (base.cycles - stats.cycles) / base.cycles))
    print("\nNote: one active bank at a time keeps the fetch-stage "
          "lookup a 1-entry match,\nexactly the power argument of "
          "paper Section 7.")


if __name__ == "__main__":
    main()
