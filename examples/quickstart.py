#!/usr/bin/env python
"""Quickstart: assemble a program, simulate it, fold a branch with ASBR.

Walks the public API end to end on a toy loop:

1. assemble MIPS-like source,
2. run the functional (golden) simulator,
3. run the cycle-accurate pipeline with a bimodal predictor,
4. extract static branch info for a hard-to-predict branch and run
   again with ASBR folding it out of the fetch stage.

Run:  python examples/quickstart.py
"""

from repro.asbr import ASBRUnit, extract_branch_info
from repro.asm import assemble
from repro.predictors import BimodalPredictor
from repro.sim import FunctionalSimulator, PipelineSimulator

SOURCE = """
.data
values: .word 13, -7, 2, 90, -4, 5, 0, 61, -8, 12
.text
main:
    la   r4, values
    li   r5, 10            # element count
    li   r6, 0             # sum of positives
loop:
    lw   r2, 0(r4)         # value
    addi r4, r4, 4
    addi r5, r5, -1        # count-- (early: fills the fold distance)
    sll  r0, r0, 0
br_pos:
    bltz r2, skip          # data-dependent: hard for any predictor
    addu r6, r6, r2
skip:
    addu r6, r6, r0        # landing pad
    bnez r5, loop
    halt
"""


def main():
    program = assemble(SOURCE)
    print("=== disassembly ===")
    print(program.disassemble())

    # 1. golden reference
    golden = FunctionalSimulator(program)
    retired = golden.run()
    print("\nfunctional: %d instructions, sum of positives = %d"
          % (retired, golden.regs[6]))

    # 2. plain pipeline
    plain = PipelineSimulator(program, predictor=BimodalPredictor(512, 512))
    base = plain.run()
    print("pipeline  : %d cycles (CPI %.2f), %d/%d branches mispredicted"
          % (base.cycles, base.cpi, base.branch_mispredicts,
             base.branches))
    assert plain.regs.snapshot() == golden.regs.snapshot()

    # 3. fold the hard branch with ASBR
    info = extract_branch_info(program, program.labels["br_pos"])
    print("\nBIT entry: %s" % info.describe(program))
    unit = ASBRUnit.from_branch_infos([info], bdt_update="execute")
    asbr_sim = PipelineSimulator(program,
                                 predictor=BimodalPredictor(512, 512),
                                 asbr=unit)
    folded = asbr_sim.run()
    assert asbr_sim.regs.snapshot() == golden.regs.snapshot()

    print("with ASBR : %d cycles (CPI %.2f), %d branches folded out"
          % (folded.cycles, folded.cpi, folded.folds_committed))
    saved = base.cycles - folded.cycles
    print("saved %d cycles (%.1f%%) — the folded branch never entered "
          "the pipeline" % (saved, 100.0 * saved / base.cycles))


if __name__ == "__main__":
    main()
